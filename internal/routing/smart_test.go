package routing_test

import (
	"math/rand"
	"testing"

	"repro/internal/routing/smart"
	"repro/internal/routing/verify"
	"repro/internal/topology"
)

func TestSmartRoutingRing(t *testing.T) {
	// Minimal routing on a 5-ring is cyclic; smart routing must cut
	// dependencies (lengthening some paths) until acyclic — with one VC.
	tp := topology.Ring(5, 1)
	res, err := (smart.Engine{}).Route(tp.Net, tp.Net.Terminals(), 1)
	if err != nil {
		t.Fatalf("smart on a 5-ring: %v", err)
	}
	if res.VCs != 1 {
		t.Errorf("VCs = %d, want 1", res.VCs)
	}
	if res.Stats["prohibitions"] == 0 {
		t.Error("no dependencies were cut on a ring")
	}
	rep, err := verify.Check(tp.Net, res, nil)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.DeadlockFree {
		t.Fatal("not deadlock free")
	}
}

func TestSmartRoutingSmallTorus(t *testing.T) {
	tp := topology.Torus3D(3, 3, 1, 1, 1)
	res, err := (smart.Engine{}).Route(tp.Net, tp.Net.Terminals(), 1)
	if err != nil {
		t.Skipf("smart routing impasse (documented behavior): %v", err)
	}
	if _, err := verify.Check(tp.Net, res, nil); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestSmartRoutingEventuallyImpassesOrSolves(t *testing.T) {
	// On larger irregular networks smart routing either solves the
	// instance or reports the impasse Cherkasova et al. describe — it
	// must never return unverified tables.
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tp := topology.RandomTopology(rng, 16, 40, 2)
		res, err := (smart.Engine{}).Route(tp.Net, tp.Net.Terminals(), 1)
		if err != nil {
			t.Logf("seed %d: impasse: %v", seed, err)
			continue
		}
		if _, err := verify.Check(tp.Net, res, nil); err != nil {
			t.Errorf("seed %d: unverified tables: %v", seed, err)
		}
	}
}
