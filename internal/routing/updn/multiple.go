package updn

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/centrality"
	"repro/internal/graph"
	"repro/internal/routing"
)

// MultiEngine implements Multiple Up*/Down* routing (Flich et al.,
// ISHPC'02, the paper's §6): up to maxVCs independent Up*/Down* instances
// with different root switches run in separate virtual layers, and every
// (source, destination) switch pair uses the layer whose instance offers
// the shortest legal path. Each layer's CDG is acyclic by the Up*/Down*
// argument, so the combination is deadlock-free while spreading load away
// from any single root's bottleneck.
type MultiEngine struct{}

// Name implements routing.Engine.
func (MultiEngine) Name() string { return "mupdn" }

// Claims implements routing.Claimant: every layer is an Up*/Down*
// routing, each acyclic on its own virtual layer.
func (MultiEngine) Claims() routing.Claims { return routing.Claims{DeadlockFree: true, MinVCs: 1} }

// Route implements routing.Engine.
func (MultiEngine) Route(net *graph.Network, dests []graph.NodeID, maxVCs int) (*routing.Result, error) {
	if maxVCs < 1 {
		return nil, errors.New("mupdn: need at least one virtual channel")
	}
	roots := pickRoots(net, maxVCs)
	if len(roots) == 0 {
		return nil, errors.New("mupdn: no usable root switches")
	}
	// One Up*/Down* instance per root; each gets its own table.
	subs := make([]*routing.Result, len(roots))
	for i, root := range roots {
		res, err := (Engine{Root: root}).Route(net, dests, 1)
		if err != nil {
			return nil, fmt.Errorf("mupdn: instance rooted at %d: %w", root, err)
		}
		subs[i] = res
	}
	// Per destination switch, compute each instance's distance from every
	// switch and pick the best layer per (source switch, destination).
	table := routing.NewTable(net, dests)
	pairLayer := make([][]uint8, net.NumNodes())
	for n := range pairLayer {
		pairLayer[n] = make([]uint8, len(dests))
	}
	// A single destination-based table cannot hold several instances'
	// next hops at once, and Flich et al.'s scheme selects routes per
	// (source, destination) pair anyway. Layer 0's instance provides the
	// destination-based default table; pairs that prefer another layer
	// carry explicit per-pair routes (routing.Result.PairPath).
	pairPath := make(map[uint64][]graph.ChannelID)
	hops := func(res *routing.Result, s, d graph.NodeID) int {
		p, err := res.Table.Path(s, d)
		if err != nil {
			return 1 << 30
		}
		return len(p)
	}
	for _, d := range dests {
		if net.Degree(d) == 0 {
			continue
		}
		for _, s := range net.Switches() {
			if net.Degree(s) == 0 || s == d {
				continue
			}
			best, bestHops := -1, 1<<30
			for i, sub := range subs {
				if h := hops(sub, s, d); h < bestHops {
					best, bestHops = i, h
				}
			}
			if best < 0 {
				continue
			}
			di := table.DestIndex(d)
			// Layer 0's table doubles as the destination-based default;
			// other layers contribute explicit per-pair routes.
			if next := subs[0].Table.Next(s, d); next != graph.NoChannel {
				table.Set(s, d, next)
			}
			for _, src := range sourcesAt(net, s) {
				if src == d {
					continue
				}
				pairLayer[src][di] = uint8(best)
				if best != 0 {
					p, err := subs[best].Table.Path(src, d)
					if err == nil {
						pairPath[routing.PairKey(src, d)] = p
					}
				}
			}
		}
	}
	res := &routing.Result{
		Algorithm: "mupdn",
		Table:     table,
		VCs:       len(roots),
		PairLayer: pairLayer,
		Stats:     map[string]float64{"roots": float64(len(roots))},
	}
	if len(pairPath) > 0 {
		res.PairPath = pairPath
	}
	return res, nil
}

// sourcesAt lists a switch and its attached terminals.
func sourcesAt(net *graph.Network, sw graph.NodeID) []graph.NodeID {
	out := []graph.NodeID{sw}
	for _, c := range net.Out(sw) {
		if t := net.Channel(c).To; net.IsTerminal(t) {
			out = append(out, t)
		}
	}
	return out
}

// pickRoots selects up to k well-separated, central switches.
func pickRoots(net *graph.Network, k int) []graph.NodeID {
	var usable []graph.NodeID
	for _, s := range net.Switches() {
		if net.Degree(s) > 0 {
			usable = append(usable, s)
		}
	}
	if len(usable) == 0 {
		return nil
	}
	if k > len(usable) {
		k = len(usable)
	}
	cb := centrality.Betweenness(net, nil)
	sort.Slice(usable, func(i, j int) bool {
		if cb[usable[i]] != cb[usable[j]] {
			return cb[usable[i]] > cb[usable[j]]
		}
		return usable[i] < usable[j]
	})
	// Greedy farthest-point among the top half by centrality.
	cand := usable
	if len(cand) > 2*k {
		cand = cand[:2*k]
	}
	roots := []graph.NodeID{cand[0]}
	distTo := graph.BFS(net, cand[0]).Dist
	minDist := append([]int32(nil), distTo...)
	for len(roots) < k {
		best, bestD := graph.NoNode, int32(-1)
		for _, c := range cand {
			if d := minDist[c]; d > bestD {
				best, bestD = c, d
			}
		}
		if best == graph.NoNode || bestD == 0 {
			break
		}
		roots = append(roots, best)
		d2 := graph.BFS(net, best).Dist
		for i := range minDist {
			if d2[i] >= 0 && (minDist[i] < 0 || d2[i] < minDist[i]) {
				minDist[i] = d2[i]
			}
		}
	}
	return roots
}
