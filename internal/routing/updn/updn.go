// Package updn implements Up*/Down* routing (Schroeder et al., Autonet):
// channels are oriented "up" (toward a BFS root) or "down"; legal paths
// climb zero or more up channels and then descend zero or more down
// channels, which makes the induced channel dependency graph acyclic with
// a single virtual layer. Destination-based tables are built per
// destination so that a node forwards "down" only when its entire
// remaining path is down (otherwise a down->up transition could appear at
// the merge point).
package updn

import (
	"errors"
	"math"

	"repro/internal/centrality"
	"repro/internal/fibheap"
	"repro/internal/graph"
	"repro/internal/routing"
)

// Engine is the Up*/Down* routing engine. Root, if valid, overrides the
// automatic root selection (highest betweenness switch).
type Engine struct {
	Root graph.NodeID
}

// Name implements routing.Engine.
func (Engine) Name() string { return "updn" }

// Claims implements routing.Claimant: Up*/Down* forbids down->up turns,
// so the dependency graph is acyclic on a single virtual layer.
func (Engine) Claims() routing.Claims { return routing.Claims{DeadlockFree: true, MinVCs: 1} }

// Route implements routing.Engine. The result uses a single layer.
func (e Engine) Route(net *graph.Network, dests []graph.NodeID, maxVCs int) (*routing.Result, error) {
	if maxVCs < 1 {
		return nil, errors.New("updn: need at least one virtual channel")
	}
	root := e.Root
	if root <= 0 || int(root) >= net.NumNodes() || !net.IsSwitch(root) || net.Degree(root) == 0 {
		root = pickRoot(net)
	}
	if root == graph.NoNode {
		return nil, errors.New("updn: no usable root switch")
	}
	level := graph.BFS(net, root).Dist

	// up reports whether traversing c moves toward the root.
	up := func(c graph.ChannelID) bool {
		ch := net.Channel(c)
		lf, lt := level[ch.From], level[ch.To]
		if lf != lt {
			return lt >= 0 && (lf < 0 || lt < lf)
		}
		return ch.To < ch.From // deterministic tie-break on equal levels
	}

	table := routing.NewTable(net, dests)
	n := net.NumNodes()
	distDown := make([]float64, n)
	nextDown := make([]graph.ChannelID, n)
	distAny := make([]float64, n)
	nextAny := make([]graph.ChannelID, n)
	h := fibheap.New(n)

	for _, d := range dests {
		if net.Degree(d) == 0 || level[d] < 0 {
			continue
		}
		// Phase A: all-down reachability. distDown[u] is the length of
		// the shortest path u -> d using only down channels.
		for i := 0; i < n; i++ {
			distDown[i] = math.Inf(1)
			nextDown[i] = graph.NoChannel
			distAny[i] = math.Inf(1)
			nextAny[i] = graph.NoChannel
		}
		distDown[d] = 0
		queue := []graph.NodeID{d}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, c := range net.In(v) { // c = (u, v); u routes down via c
				if !up(c) {
					u := net.Channel(c).From
					if math.IsInf(distDown[u], 1) {
						distDown[u] = distDown[v] + 1
						nextDown[u] = c
						queue = append(queue, u)
					}
				}
			}
		}
		// Phase B: nodes without an all-down path climb up toward the
		// nearest down-capable node (multi-source Dijkstra seeded with the
		// all-down distances).
		for i := 0; i < n; i++ {
			if !math.IsInf(distDown[i], 1) {
				distAny[i] = distDown[i]
				h.InsertOrDecrease(i, distDown[i])
			}
		}
		for {
			item, ok := h.ExtractMin()
			if !ok {
				break
			}
			v := graph.NodeID(item)
			for _, c := range net.In(v) { // c = (u, v)
				if !up(c) {
					continue // climbing must use up channels
				}
				u := net.Channel(c).From
				if nd := distAny[v] + 1; nd < distAny[u] && math.IsInf(distDown[u], 1) {
					distAny[u] = nd
					nextAny[u] = c
					h.InsertOrDecrease(int(u), nd)
				}
			}
		}
		for _, s := range net.Switches() {
			if s == d {
				continue
			}
			switch {
			case nextDown[s] != graph.NoChannel:
				table.Set(s, d, nextDown[s])
			case nextAny[s] != graph.NoChannel:
				table.Set(s, d, nextAny[s])
			}
		}
	}
	return &routing.Result{Algorithm: "updn", Table: table, VCs: 1}, nil
}

// pickRoot selects the most central switch (Up*/Down* quality depends
// heavily on the root; OpenSM uses subnet heuristics, we use betweenness).
func pickRoot(net *graph.Network) graph.NodeID {
	switches := net.Switches()
	var usable []graph.NodeID
	for _, s := range switches {
		if net.Degree(s) > 0 {
			usable = append(usable, s)
		}
	}
	return centrality.MostCentral(net, usable)
}
