// Property-based harness for the paper's correctness lemmas: random
// topologies, random failures, random VC budgets and random worker counts
// must always yield a deadlock-free (CDG-acyclic), fully-delivering,
// destination-based and deterministic routing. Run the seeded corpus in
// every `go test`; explore with
//
//	go test -run '^$' -fuzz FuzzNueProperties -fuzztime 60s ./internal/routing/verify/
package verify_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/routing"
	"repro/internal/routing/verify"
	"repro/internal/topology"
)

// fuzzTopology derives a small topology from the fuzz inputs; every input
// maps to some valid network so the fuzzer never wastes executions.
func fuzzTopology(kind, a, b, c uint8, seed int64) *topology.Topology {
	switch kind % 8 {
	case 0:
		return topology.Torus3D(2+int(a%3), 2+int(b%3), 2+int(c%2), 1+int(a%2), 1)
	case 1:
		sw := 2 + int(a%3) // switches per group
		h := 1 + int(c%2)  // global ports per switch
		return topology.Dragonfly(sw, 1+int(b%2), h, sw*h+1)
	case 2:
		return topology.Kautz(2+int(a%2), 2, 1+int(b%2), 1)
	case 4:
		// 1D torus: with k=1 (see the seeded corpus) the layer is
		// escape-dominated — nearly every route leans on the spanning
		// tree, the regime where the CDG has the least slack.
		return topology.Torus3D(4+int(a%6), 1, 1, 1+int(b%2), 1)
	case 5:
		// Full mesh: the VC-free engine's claimed domain; Nue must handle
		// the all-to-all dependency density too.
		return topology.FullMesh(4+int(a%5), 1+int(b%2))
	case 6:
		// A single Dragonfly router group (full mesh with Dragonfly-sized
		// parameters).
		return topology.DragonflyGroup(4+int(a%5), 1+int(b%2))
	case 7:
		// Large-sparse: the regime the PR 8 flat core targets — many
		// switches, average switch degree ~3, long shortest paths, heavy
		// escape-tree traffic. Big enough to exercise the CSR/dial/arena
		// machinery, small enough for the seeded corpus to stay fast.
		rng := rand.New(rand.NewSource(seed ^ 0x5a))
		sws := 48 + int(a)%48
		return topology.RandomTopology(rng, sws, sws*3/2, 1)
	default:
		rng := rand.New(rand.NewSource(seed))
		sws := 10 + int(a)%30
		return topology.RandomTopology(rng, sws, sws*3, 1+int(b%3))
	}
}

// routeHash digests a result's forwarding behavior (VCs, layer
// assignment, every next hop) for the determinism cross-check.
func routeHash(net *graph.Network, res *routing.Result) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v int64) {
		h = (h ^ uint64(v)) * prime
	}
	mix(int64(res.VCs))
	for _, l := range res.DestLayer {
		mix(int64(l))
	}
	for _, s := range net.Switches() {
		for _, d := range res.Table.Dests() {
			mix(int64(res.Table.Next(s, d)))
		}
	}
	return h
}

func FuzzNueProperties(f *testing.F) {
	// Seeded deterministic corpus: one entry per topology family plus
	// fault-heavy and VC-starved corners; CI replays exactly these.
	f.Add(uint8(0), uint8(0), uint8(1), uint8(0), int64(1), uint8(4), uint8(3), uint8(0))
	f.Add(uint8(1), uint8(2), uint8(1), uint8(1), int64(2), uint8(2), uint8(1), uint8(5))
	f.Add(uint8(2), uint8(1), uint8(0), uint8(0), int64(3), uint8(1), uint8(7), uint8(0))
	f.Add(uint8(3), uint8(25), uint8(2), uint8(0), int64(4), uint8(3), uint8(2), uint8(8))
	f.Add(uint8(0), uint8(2), uint8(2), uint8(1), int64(5), uint8(1), uint8(4), uint8(9))
	f.Add(uint8(3), uint8(5), uint8(1), uint8(3), int64(6), uint8(2), uint8(0), uint8(3))
	// Escape-dominated corners: rings routed with a single virtual layer
	// (vcs%4 == 0 makes k = 1), where every route shares the one escape
	// tree and the dependency slack is smallest.
	f.Add(uint8(4), uint8(2), uint8(0), uint8(0), int64(7), uint8(0), uint8(1), uint8(0))
	f.Add(uint8(4), uint8(5), uint8(1), uint8(0), int64(8), uint8(0), uint8(6), uint8(4))
	// Full-mesh families at k=1: the all-to-all fabric where the VC-free
	// engine lives; Nue's escape layer must survive the same corner.
	f.Add(uint8(5), uint8(3), uint8(1), uint8(0), int64(9), uint8(0), uint8(2), uint8(6))
	f.Add(uint8(6), uint8(4), uint8(0), uint8(0), int64(10), uint8(0), uint8(5), uint8(0))
	// Large-sparse entries (PR 8): the flat-core target regime, healthy
	// and degraded, single-layer and multi-layer.
	f.Add(uint8(7), uint8(10), uint8(0), uint8(0), int64(11), uint8(1), uint8(3), uint8(0))
	f.Add(uint8(7), uint8(40), uint8(1), uint8(0), int64(12), uint8(0), uint8(7), uint8(7))

	f.Fuzz(func(t *testing.T, kind, a, b, c uint8, seed int64, vcs, workers, failPct uint8) {
		tp := fuzzTopology(kind, a, b, c, seed)
		if failPct%10 > 0 {
			rng := rand.New(rand.NewSource(seed + 17))
			tp, _ = topology.InjectLinkFailures(tp, rng, float64(failPct%10)/100)
		}
		dests := tp.Net.Terminals()
		if len(dests) == 0 {
			dests = tp.Net.Switches()
		}
		k := 1 + int(vcs%4)
		w := 1 + int(workers%8)

		opts := core.DefaultOptions()
		opts.Seed = seed
		opts.Workers = w
		res, err := core.New(opts).Route(tp.Net, dests, k)
		if err != nil {
			// Nue must succeed on every connected network for any k >= 1
			// (Lemma 3); failure injection keeps the network connected.
			t.Fatalf("kind=%d k=%d workers=%d: Route failed: %v", kind%7, k, w, err)
		}

		// Lemma 1/3: every source reaches every destination over valid,
		// loop-free paths. Theorem 1/Lemma 2: the induced virtual-channel
		// dependency graph is acyclic.
		rep, err := verify.Check(tp.Net, res, nil)
		if err != nil {
			t.Fatalf("kind=%d k=%d workers=%d: %v", kind%7, k, w, err)
		}
		if !rep.DeadlockFree {
			t.Fatalf("verifier passed but reported not deadlock-free")
		}

		// Differential: the independent oracle (disjoint trusted base —
		// its own walker, dependency graph and cycle search) must agree
		// with the verifier on every fuzzed routing.
		if _, oerr := oracle.Certify(tp.Net, res, oracle.Options{MaxVCs: k}); oerr != nil {
			t.Fatalf("kind=%d k=%d workers=%d: verifier passed but oracle refutes: %v", kind%7, k, w, oerr)
		}

		// Destination-based consistency: the layer is a function of the
		// destination alone and the budget is respected.
		if res.DestLayer == nil || len(res.DestLayer) != len(res.Table.Dests()) {
			t.Fatalf("missing or mis-sized destination layer assignment")
		}
		if got := verify.RequiredVCs(res); got > k {
			t.Fatalf("uses %d virtual layers, budget was %d", got, k)
		}

		// Determinism: a different worker count must reproduce the exact
		// same forwarding state.
		opts2 := opts
		opts2.Workers = 1 + (w+3)%8
		res2, err := core.New(opts2).Route(tp.Net, dests, k)
		if err != nil {
			t.Fatalf("re-route with workers=%d failed: %v", opts2.Workers, err)
		}
		if routeHash(tp.Net, res) != routeHash(tp.Net, res2) {
			t.Fatalf("tables differ between workers=%d and workers=%d", w, opts2.Workers)
		}

		// Flat-vs-legacy cross-check (PR 8): the CSR + dial-queue + arena
		// hot path must be bit-identical to the Network-map + Fibonacci-heap
		// reference — same tables and same final per-layer CDG states — on
		// every fuzzed instance, not just the curated equivalence wall.
		optsL := opts
		optsL.LegacyCore = true
		resL, err := core.New(optsL).Route(tp.Net, dests, k)
		if err != nil {
			t.Fatalf("legacy-core re-route failed: %v", err)
		}
		if routeHash(tp.Net, res) != routeHash(tp.Net, resL) {
			t.Fatalf("flat and legacy cores disagree on the forwarding tables")
		}
		if len(res.LayerCDG) != len(resL.LayerCDG) {
			t.Fatalf("flat and legacy cores used different layer counts")
		}
		for l := range res.LayerCDG {
			if res.LayerCDG[l] != resL.LayerCDG[l] {
				t.Fatalf("layer %d: flat CDG digest %#x != legacy %#x", l, res.LayerCDG[l], resL.LayerCDG[l])
			}
		}
	})
}
