// Package verify mechanically checks the correctness properties of a
// routing result (the paper's Lemmas 1-3, for Nue and every baseline):
//
//   - Connectivity: a valid path exists from every source to every
//     destination in the same network component (Lemma 3).
//   - Cycle-free, destination-based paths: following the tables never
//     revisits a node (Lemma 1; the destination-based property holds by
//     construction of routing.Table, uniqueness per (node, destination)).
//   - Deadlock freedom: the dependency graph over virtual channels
//     (channel, VL) induced by all source->destination paths is acyclic
//     (Theorem 1 / Lemma 2). Per-hop VL selection via SL2VL mappings is
//     supported, so Torus-2QoS-style dateline schemes verify exactly.
package verify

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Report summarizes a verification run.
type Report struct {
	// Pairs is the number of (source, destination) pairs checked.
	Pairs int
	// MaxHops is the longest path encountered.
	MaxHops int
	// Deps counts distinct dependency edges over (channel, VL) vertices.
	Deps int
	// DeadlockFree is true when the induced dependency graph is acyclic.
	DeadlockFree bool
	// CyclicVLs lists the virtual lanes of vertices involved in cycles.
	CyclicVLs []int
}

// Check runs all verifications for the given sources (nil = all
// terminals, or all connected nodes if the network has no terminals) and
// returns an error describing the first violated property.
func Check(net *graph.Network, res *routing.Result, sources []graph.NodeID) (*Report, error) {
	if sources == nil {
		sources = defaultSources(net)
	}
	rep := &Report{}
	if err := checkConnectivity(net, res, sources, rep); err != nil {
		return rep, err
	}
	if err := checkDeadlockFree(net, res, sources, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

func defaultSources(net *graph.Network) []graph.NodeID {
	if net.NumTerminals() > 0 {
		// Keep only connected terminals (fault injection may orphan some).
		var out []graph.NodeID
		for _, t := range net.Terminals() {
			if net.Degree(t) > 0 {
				out = append(out, t)
			}
		}
		return out
	}
	var out []graph.NodeID
	for n := 0; n < net.NumNodes(); n++ {
		if net.Degree(graph.NodeID(n)) > 0 {
			out = append(out, graph.NodeID(n))
		}
	}
	return out
}

// checkConnectivity walks every (source, destination) path.
func checkConnectivity(net *graph.Network, res *routing.Result, sources []graph.NodeID, rep *Report) error {
	for _, d := range res.Table.Dests() {
		if net.Degree(d) == 0 {
			continue // destination disconnected by faults
		}
		reach := graph.ReverseBFS(net, d)
		for _, s := range sources {
			if s == d {
				continue
			}
			if reach.Dist[s] < 0 {
				continue // cannot reach d (one-way faults); no path required
			}
			p, err := res.PathFor(s, d)
			if err != nil {
				return fmt.Errorf("verify: path %d -> %d: %w", s, d, err)
			}
			if err := validPath(net, p, s, d); err != nil {
				return fmt.Errorf("verify: path %d -> %d: %w", s, d, err)
			}
			rep.Pairs++
			if len(p) > rep.MaxHops {
				rep.MaxHops = len(p)
			}
		}
	}
	return nil
}

// validPath checks continuity, endpoints and node-cycle freedom of an
// explicit path (table walks enforce this implicitly; PairPath overrides
// must be checked).
func validPath(net *graph.Network, p []graph.ChannelID, s, d graph.NodeID) error {
	if len(p) == 0 {
		if s == d {
			return nil
		}
		return fmt.Errorf("empty path")
	}
	if net.Channel(p[0]).From != s {
		return fmt.Errorf("starts at node %d", net.Channel(p[0]).From)
	}
	if net.Channel(p[len(p)-1]).To != d {
		return fmt.Errorf("ends at node %d", net.Channel(p[len(p)-1]).To)
	}
	seen := map[graph.NodeID]bool{s: true}
	for i, c := range p {
		ch := net.Channel(c)
		if ch.Failed {
			return fmt.Errorf("uses failed channel %d", c)
		}
		if i > 0 && net.Channel(p[i-1]).To != ch.From {
			return fmt.Errorf("discontinuous at hop %d", i)
		}
		if seen[ch.To] {
			return fmt.Errorf("revisits node %d", ch.To)
		}
		seen[ch.To] = true
	}
	return nil
}

// checkDeadlockFree builds the virtual-channel dependency graph induced by
// all paths and checks it for cycles.
func checkDeadlockFree(net *graph.Network, res *routing.Result, sources []graph.NodeID, rep *Report) error {
	vcs := res.VCs
	if vcs < 1 {
		vcs = 1
	}
	adj, deps := InducedCDG(net, res, sources)
	rep.Deps = deps
	cyclic := cyclicVertices(net.NumChannels()*vcs, adj)
	if len(cyclic) == 0 {
		rep.DeadlockFree = true
		return nil
	}
	vlSet := map[int]bool{}
	for _, v := range cyclic {
		vlSet[int(v)%vcs] = true
	}
	for vl := range vlSet {
		rep.CyclicVLs = append(rep.CyclicVLs, vl)
	}
	sort.Ints(rep.CyclicVLs)
	return fmt.Errorf("verify: cyclic channel dependency graph on VLs %v (deadlock possible)", rep.CyclicVLs)
}

// InducedCDG builds the dependency graph over virtual-channel vertices
// (channel*VCs + vl) induced by the actual traffic paths from sources to
// the table's destinations. It returns the adjacency and the number of
// distinct dependency edges.
func InducedCDG(net *graph.Network, res *routing.Result, sources []graph.NodeID) ([][]int32, int) {
	vcs := res.VCs
	if vcs < 1 {
		vcs = 1
	}
	nv := net.NumChannels() * vcs
	adj := make([][]int32, nv)
	seen := make([]map[int32]bool, nv)
	deps := 0
	addDep := func(a, b int32) {
		m := seen[a]
		if m == nil {
			m = make(map[int32]bool)
			seen[a] = m
		}
		if !m[b] {
			m[b] = true
			adj[a] = append(adj[a], b)
			deps++
		}
	}
	vertex := func(c graph.ChannelID, vl uint8) int32 {
		return int32(int(c)*vcs + int(vl))
	}
	// visited[sl][node] epochs avoid rewalking shared suffixes, which are
	// identical for identical service levels.
	visited := make(map[uint8][]int32)
	epoch := int32(0)
	for _, d := range res.Table.Dests() {
		if net.Degree(d) == 0 {
			continue
		}
		epoch++
		for _, s := range sources {
			if s == d {
				continue
			}
			sl := res.Layer(s, d)
			if res.PairPath != nil {
				if p, ok := res.PairPath[routing.PairKey(s, d)]; ok {
					// Explicit (source-routed) path: add its dependencies
					// directly.
					for i := 0; i+1 < len(p); i++ {
						v1, v2 := res.VL(sl, p[i]), res.VL(sl, p[i+1])
						if int(v1) >= vcs {
							v1 = uint8(vcs - 1)
						}
						if int(v2) >= vcs {
							v2 = uint8(vcs - 1)
						}
						addDep(vertex(p[i], v1), vertex(p[i+1], v2))
					}
					continue
				}
			}
			vis := visited[sl]
			if vis == nil {
				vis = make([]int32, net.NumNodes())
				visited[sl] = vis
			}
			cur := s
			var prev graph.ChannelID = graph.NoChannel
			var prevVL uint8
			for steps := 0; cur != d && steps <= net.NumNodes(); steps++ {
				c := res.Table.Next(cur, d)
				if c == graph.NoChannel {
					break // connectivity check reports this separately
				}
				vl := res.VL(sl, c)
				if int(vl) >= vcs {
					vl = uint8(vcs - 1)
				}
				if prev != graph.NoChannel {
					addDep(vertex(prev, prevVL), vertex(c, vl))
				}
				if vis[cur] == epoch && prev != graph.NoChannel {
					break // suffix from cur already recorded for this SL
				}
				vis[cur] = epoch
				prev, prevVL = c, vl
				cur = net.Channel(c).To
			}
		}
	}
	return adj, deps
}

// cyclicVertices returns the vertices left after Kahn's algorithm, i.e.
// those participating in (or downstream-locked behind) a cycle.
func cyclicVertices(nv int, adj [][]int32) []int32 {
	indeg := make([]int32, nv)
	for _, succ := range adj {
		for _, b := range succ {
			indeg[b]++
		}
	}
	var queue []int32
	removed := make([]bool, nv)
	for v := 0; v < nv; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
			removed[v] = true
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, b := range adj[v] {
			indeg[b]--
			if indeg[b] == 0 && !removed[b] {
				removed[b] = true
				queue = append(queue, b)
			}
		}
	}
	var cyc []int32
	for v := 0; v < nv; v++ {
		if !removed[v] && (len(adj[v]) > 0 || indeg[v] > 0) {
			cyc = append(cyc, int32(v))
		}
	}
	return cyc
}

// RequiredVCs reports how many distinct layers the result actually uses.
func RequiredVCs(res *routing.Result) int {
	used := make(map[uint8]bool)
	switch {
	case res.DestLayer != nil:
		for _, l := range res.DestLayer {
			used[l] = true
		}
	case res.PairLayer != nil:
		for _, row := range res.PairLayer {
			for _, l := range row {
				used[l] = true
			}
		}
	default:
		return 1
	}
	if len(used) == 0 {
		return 1
	}
	max := uint8(0)
	for l := range used {
		if l > max {
			max = l
		}
	}
	return int(max) + 1
}
