package verify

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// clockwiseRing builds the canonical deadlock example: every switch of a
// ring forwards clockwise toward all destinations (unrestricted minimal
// routing on a ring induces a cyclic CDG).
func clockwiseRing(n int) (*topology.Topology, *routing.Result) {
	tp := topology.Ring(n, 1)
	g := tp.Net
	dests := g.Terminals()
	tbl := routing.NewTable(g, dests)
	for _, d := range dests {
		att := g.TerminalSwitch(d)
		for _, s := range g.Switches() {
			if s == att {
				tbl.Set(s, d, g.FindChannel(s, d))
			} else {
				tbl.Set(s, d, g.FindChannel(s, (s+1)%graph.NodeID(n)))
			}
		}
	}
	return tp, &routing.Result{Algorithm: "clockwise", Table: tbl, VCs: 1}
}

func TestVerifierDetectsRingDeadlock(t *testing.T) {
	tp, res := clockwiseRing(4)
	rep, err := Check(tp.Net, res, nil)
	if err == nil {
		t.Fatal("verifier accepted a deadlock-prone clockwise ring")
	}
	if rep.DeadlockFree {
		t.Error("report claims deadlock-free")
	}
	if len(rep.CyclicVLs) == 0 {
		t.Error("no cyclic VL reported")
	}
}

func TestVerifierDetectsMissingRoute(t *testing.T) {
	tp := topology.Ring(4, 1)
	g := tp.Net
	res := &routing.Result{
		Algorithm: "empty",
		Table:     routing.NewTable(g, g.Terminals()),
		VCs:       1,
	}
	if _, err := Check(g, res, nil); err == nil {
		t.Fatal("verifier accepted empty tables")
	}
}

func TestVerifierAcceptsTreeRouting(t *testing.T) {
	// Routing along a spanning tree is always deadlock-free.
	tp := topology.Torus3D(3, 3, 1, 2, 1)
	g := tp.Net
	tree := graph.SpanningTree(g, 0)
	dests := g.Terminals()
	tbl := routing.NewTable(g, dests)
	for _, d := range dests {
		for _, s := range g.Switches() {
			p := tree.TreePath(s, d)
			if len(p) > 0 {
				tbl.Set(s, d, p[0])
			}
		}
	}
	res := &routing.Result{Algorithm: "tree", Table: tbl, VCs: 1}
	rep, err := Check(g, res, nil)
	if err != nil {
		t.Fatalf("tree routing rejected: %v", err)
	}
	if !rep.DeadlockFree {
		t.Error("tree routing flagged as deadlocking")
	}
	if rep.Pairs != len(dests)*(len(dests)-1) {
		t.Errorf("pairs = %d, want %d", rep.Pairs, len(dests)*(len(dests)-1))
	}
}

func TestVerifierLayerSplitMasksCycle(t *testing.T) {
	// The clockwise ring becomes deadlock-free if each destination gets
	// its own virtual layer (4 destinations, 4 layers): each layer's CDG
	// is a simple path.
	tp, res := clockwiseRing(4)
	res.VCs = 4
	res.DestLayer = []uint8{0, 1, 2, 3}
	rep, err := Check(tp.Net, res, nil)
	if err != nil {
		t.Fatalf("per-destination layering rejected: %v", err)
	}
	if !rep.DeadlockFree {
		t.Error("layered clockwise ring flagged as deadlocking")
	}
}

func TestRequiredVCs(t *testing.T) {
	tp, res := clockwiseRing(4)
	_ = tp
	if got := RequiredVCs(res); got != 1 {
		t.Errorf("RequiredVCs(single) = %d, want 1", got)
	}
	res.DestLayer = []uint8{0, 2, 1, 2}
	if got := RequiredVCs(res); got != 3 {
		t.Errorf("RequiredVCs(dest) = %d, want 3", got)
	}
}

func TestInducedCDGDepCounts(t *testing.T) {
	// On a 3-switch path a->b->c with one terminal each, traffic both ways
	// induces symmetric dependencies.
	b := graph.NewBuilder()
	s0 := b.AddSwitch("")
	s1 := b.AddSwitch("")
	s2 := b.AddSwitch("")
	b.AddLink(s0, s1)
	b.AddLink(s1, s2)
	t0 := b.AddTerminal("")
	b.AddLink(t0, s0)
	t2 := b.AddTerminal("")
	b.AddLink(t2, s2)
	g := b.MustBuild()
	dests := []graph.NodeID{t0, t2}
	tbl := routing.NewTable(g, dests)
	tbl.Set(s0, t0, g.FindChannel(s0, t0))
	tbl.Set(s1, t0, g.FindChannel(s1, s0))
	tbl.Set(s2, t0, g.FindChannel(s2, s1))
	tbl.Set(s0, t2, g.FindChannel(s0, s1))
	tbl.Set(s1, t2, g.FindChannel(s1, s2))
	tbl.Set(s2, t2, g.FindChannel(s2, t2))
	res := &routing.Result{Table: tbl, VCs: 1}
	rep, err := Check(g, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Path t2->t0: (t2,s2)(s2,s1)(s1,s0)(s0,t0): 3 deps; same mirrored: 6.
	if rep.Deps != 6 {
		t.Errorf("deps = %d, want 6", rep.Deps)
	}
	if rep.MaxHops != 4 {
		t.Errorf("MaxHops = %d, want 4", rep.MaxHops)
	}
}

func TestVerifierChecksPairPathOverrides(t *testing.T) {
	tp := topology.Ring(4, 1)
	g := tp.Net
	dests := g.Terminals()
	tbl := routing.NewTable(g, dests)
	// Valid destination-based tables (tree routing via switch 0).
	tree := graph.SpanningTree(g, 0)
	for _, d := range dests {
		for _, s := range g.Switches() {
			if p := tree.TreePath(s, d); len(p) > 0 {
				tbl.Set(s, d, p[0])
			}
		}
	}
	res := &routing.Result{Table: tbl, VCs: 1}
	// A broken override: discontinuous path.
	res.PairPath = map[uint64][]graph.ChannelID{
		routing.PairKey(dests[0], dests[2]): {g.FindChannel(dests[0], 0), g.FindChannel(2, 3)},
	}
	if _, err := Check(g, res, nil); err == nil {
		t.Error("discontinuous PairPath accepted")
	}
	// A correct override must pass.
	full := append([]graph.ChannelID{g.FindChannel(dests[0], 0)}, tree.TreePath(0, dests[2])...)
	res.PairPath[routing.PairKey(dests[0], dests[2])] = full
	if _, err := Check(g, res, nil); err != nil {
		t.Errorf("valid PairPath rejected: %v", err)
	}
}

func TestVerifierRejectsRevisitingOverride(t *testing.T) {
	tp := topology.Ring(4, 1)
	g := tp.Net
	dests := g.Terminals()
	tbl := routing.NewTable(g, dests)
	tree := graph.SpanningTree(g, 0)
	for _, d := range dests {
		for _, s := range g.Switches() {
			if p := tree.TreePath(s, d); len(p) > 0 {
				tbl.Set(s, d, p[0])
			}
		}
	}
	res := &routing.Result{Table: tbl, VCs: 1}
	// Path that ping-pongs: t0 -> s0 -> s1 -> s0 ... revisits s0.
	res.PairPath = map[uint64][]graph.ChannelID{
		routing.PairKey(dests[0], dests[1]): {
			g.FindChannel(dests[0], 0),
			g.FindChannel(0, 1),
			g.FindChannel(1, 0),
			g.FindChannel(0, 1),
			g.FindChannel(1, dests[1]),
		},
	}
	if _, err := Check(g, res, nil); err == nil {
		t.Error("node-revisiting PairPath accepted")
	}
}
