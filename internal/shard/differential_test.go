package shard

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/fabric"
	"repro/internal/topology"
)

// diffSeeds returns the sweep width: 200 seeds by default, 12 under
// -short, overridable with NUE_DIFF_SEEDS (the CI failover job runs 60
// under -race).
func diffSeeds(t *testing.T) int {
	if s := os.Getenv("NUE_DIFF_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("NUE_DIFF_SEEDS=%q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return 12
	}
	return 200
}

// TestShardedMonolithicDifferential is the digest-equality sweep: for
// every seed, a sharded plane and a monolithic manager replay the same
// churn trace on the same topology with the same fabric options, and
// after every single epoch the published forwarding tables must be
// bit-identical (FNV digest) — sharding changes where layer repairs run
// and who may publish, never what is computed.
func TestShardedMonolithicDifferential(t *testing.T) {
	seeds := diffSeeds(t)
	const events = 6
	for seed := 0; seed < seeds; seed++ {
		var tp *topology.Topology
		switch seed % 3 {
		case 0:
			rng := rand.New(rand.NewSource(int64(seed)))
			sw := 14 + seed%5
			tp = topology.RandomTopology(rng, sw, 3*sw, 1)
		case 1:
			tp = topology.Torus3D(3, 3, 2, 1, 1)
		default:
			tp = topology.Dragonfly(3, 2, 2, 5)
		}
		opts := fabric.Options{MaxVCs: 1 + seed%4, Seed: int64(seed)}
		mgr, err := fabric.NewManager(tp, opts)
		if err != nil {
			t.Fatalf("seed %d: monolithic: %v", seed, err)
		}
		p, err := New(tp, Options{
			Shards:   2 + seed%3,
			Replicas: 1 + 2*(seed%2),
			Fabric:   opts,
		})
		if err != nil {
			t.Fatalf("seed %d: sharded: %v", seed, err)
		}
		check := func(step string) {
			ms, ps := mgr.View(), p.View()
			if ms.Epoch != ps.Epoch {
				t.Fatalf("seed %d %s: epochs diverged: monolithic %d, sharded %d",
					seed, step, ms.Epoch, ps.Epoch)
			}
			md, pd := ms.Result.Table.Digest(), ps.Result.Table.Digest()
			if md != pd {
				t.Fatalf("seed %d %s: table digests diverged: monolithic %#x, sharded %#x",
					seed, step, md, pd)
			}
		}
		check("initial")
		rng := rand.New(rand.NewSource(int64(10_000 + seed)))
		for i := 0; i < events; i++ {
			ev, ok := mgr.RandomEvent(rng, 0.3)
			if !ok {
				break
			}
			if _, err := mgr.Apply(ev); err != nil {
				t.Fatalf("seed %d event %d (%s): monolithic: %v", seed, i, ev, err)
			}
			rep, err := p.Apply(ev)
			if err != nil {
				t.Fatalf("seed %d event %d (%s): sharded: %v", seed, i, ev, err)
			}
			if rep.SeamVeto != nil {
				t.Fatalf("seed %d event %d (%s): legitimate repair vetoed: %v",
					seed, i, ev, rep.SeamVeto)
			}
			check(ev.String())
			if e, ok := p.Cluster().CommittedAt(rep.Epoch); rep.NoOp == false && (!ok || e.Digest != p.View().Result.Table.Digest()) {
				t.Fatalf("seed %d event %d: published epoch %d not digest-committed", seed, i, rep.Epoch)
			}
		}
	}
}
