package shard

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fabric"
	"repro/internal/graph"
)

// ErrDeposed reports that an append lost its quorum: the proposing term
// is no longer current on a majority of replicas (a newer leader exists
// or the proposer sits in a minority partition). The proposed epoch is
// NOT committed and must not be published.
var ErrDeposed = errors.New("shard: term deposed, epoch not committed")

// ErrNoQuorum reports that an election could not reach a majority.
var ErrNoQuorum = errors.New("shard: no election quorum reachable")

// Entry is one committed epoch in the replicated log. Beyond the
// published snapshot it carries the bookkeeping a successor leader needs
// to rebuild a fabric.State exactly (the explicit link-failed and
// switch-down maps are not derivable from the network alone: a link that
// failed on its own under a down switch must stay down when the switch
// rejoins).
type Entry struct {
	// Epoch is the log index (Epoch == position in the log).
	Epoch uint64
	// Term is the leadership term that certified and committed the epoch.
	Term uint64
	// Digest fingerprints the epoch's forwarding table
	// (routing.Table.Digest); replicas cross-check it on append.
	Digest uint64
	// Snap is the certified immutable snapshot of the epoch.
	Snap *fabric.Snapshot
	// LinkFailed / NodeDown replicate the controller bookkeeping.
	LinkFailed map[graph.ChannelID]bool
	NodeDown   map[graph.NodeID]bool
	// Event is the churn event that produced the epoch (zero for the
	// initial routing).
	Event fabric.Event
}

// replica is one controller replica's durable state: the classic Raft
// triple (currentTerm, votedFor, log). Liveness and reachability are
// fault-injection state owned by the cluster.
type replica struct {
	id          int
	alive       bool
	group       int // partition group; replicas in different groups cannot talk
	currentTerm uint64
	votedFor    int // candidate voted for in currentTerm, -1 = none
	log         []Entry
}

// upToDate reports whether a candidate log described by (lastTerm,
// lastLen) is at least as up-to-date as r's log — Raft's election
// restriction, which keeps committed entries on every electable leader.
func (r *replica) upToDate(lastTerm uint64, lastLen int) bool {
	myLen := len(r.log)
	var myLast uint64
	if myLen > 0 {
		myLast = r.log[myLen-1].Term
	}
	if lastTerm != myLast {
		return lastTerm > myLast
	}
	return lastLen >= myLen
}

// Cluster is the replica set of one control plane. It is an in-process
// model of the replication protocol: elections and appends execute
// synchronously under a lock, while kill/partition injection flips
// per-replica reachability, so tests can drive real split-brain
// interleavings deterministically (and under -race, concurrently).
type Cluster struct {
	mu       sync.Mutex
	replicas []*replica
}

// NewCluster creates n live, connected replicas with empty logs.
func NewCluster(n int) *Cluster {
	if n < 1 {
		n = 1
	}
	c := &Cluster{replicas: make([]*replica, n)}
	for i := range c.replicas {
		c.replicas[i] = &replica{id: i, alive: true, votedFor: -1}
	}
	return c
}

// Size returns the number of replicas (dead ones included — quorum is
// always a majority of the full membership).
func (c *Cluster) Size() int { return len(c.replicas) }

func (c *Cluster) quorum() int { return len(c.replicas)/2 + 1 }

// Kill marks a replica dead: it votes for no one, acks nothing and
// serves nothing until Revive.
func (c *Cluster) Kill(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replicas[id].alive = false
}

// Revive brings a dead replica back with its log intact (crash-recovery
// semantics: currentTerm/votedFor/log survive, volatile state does not).
func (c *Cluster) Revive(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replicas[id].alive = true
}

// Alive reports replica liveness.
func (c *Cluster) Alive(id int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicas[id].alive
}

// Partition splits the replicas into isolated groups; replicas absent
// from every group form one implicit residual group. Heal() reconnects.
func (c *Cluster) Partition(groups ...[]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.replicas {
		r.group = 0
	}
	for gi, g := range groups {
		for _, id := range g {
			c.replicas[id].group = gi + 1
		}
	}
}

// Heal removes all partitions.
func (c *Cluster) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.replicas {
		r.group = 0
	}
}

// reachable reports whether a and b can exchange messages. Callers hold mu.
func (c *Cluster) reachable(a, b int) bool {
	ra, rb := c.replicas[a], c.replicas[b]
	return ra.alive && rb.alive && ra.group == rb.group
}

// TryElect runs one election round with the given replica as candidate:
// it increments the candidate's term, votes for itself and requests votes
// from every reachable replica, which grant iff the term is new to them
// and the candidate's log is at least as up-to-date as theirs (the Raft
// election restriction). Returns the won term, or ErrNoQuorum — the
// candidate's term stays bumped either way, as in Raft.
//
// A winner's log is truncated to the globally committed prefix. Real Raft
// instead replicates the winner's uncommitted leftovers; this control
// plane deliberately discards them — a failover restores from the last
// committed epoch and recomputes, so an uncommitted tail must not shift
// the new leader's next log index. Dropping it is safe: every published
// epoch was quorum-acked under its own proposing term, which (with the
// prefix-consistent Append below) every electable candidate still holds.
func (c *Cluster) TryElect(candidate int) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cand := c.replicas[candidate]
	if !cand.alive {
		return 0, fmt.Errorf("%w: candidate %d is dead", ErrNoQuorum, candidate)
	}
	cand.currentTerm++
	cand.votedFor = candidate
	term := cand.currentTerm
	var lastTerm uint64
	if n := len(cand.log); n > 0 {
		lastTerm = cand.log[n-1].Term
	}
	votes := 1
	for _, r := range c.replicas {
		if r.id == candidate || !c.reachable(candidate, r.id) {
			continue
		}
		if term > r.currentTerm {
			r.currentTerm = term
			r.votedFor = -1
		}
		if term == r.currentTerm && (r.votedFor == -1 || r.votedFor == candidate) && r.upToDate(lastTerm, len(cand.log)) {
			r.votedFor = candidate
			votes++
		}
	}
	if votes < c.quorum() {
		return 0, fmt.Errorf("%w: term %d got %d/%d votes", ErrNoQuorum, term, votes, c.quorum())
	}
	if n := c.committedLen(); len(cand.log) > n {
		cand.log = cand.log[:n]
	}
	return term, nil
}

// committedLen returns the length of the committed prefix (committed
// epochs are contiguous: prefix-consistent appends make every quorum
// holder of epoch k hold identical entries below k). Callers hold mu.
func (c *Cluster) committedLen() int {
	n := 0
	for {
		if _, ok := c.committedAt(uint64(n)); !ok {
			return n
		}
		n++
	}
}

// Append proposes e as the next log entry of leader's term and commits
// it iff a majority (leader included) accepts. Followers reject terms
// older than their own and accept only prefix-consistently: any suffix
// conflicting with the leader's log is truncated first, then the leader
// replays its own entries from the match point to catch the follower up
// before appending e (Raft's log repair — this is what lets a revived
// replica that missed epochs while dead rejoin the quorum). Replayed
// entries keep their original terms. A leader that cannot assemble a
// quorum is deposed and the entry is NOT committed (the caller must not
// publish it). e's Epoch must equal the leader's log length.
func (c *Cluster) Append(leader int, term uint64, e Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ld := c.replicas[leader]
	if !ld.alive {
		return fmt.Errorf("%w: leader %d is dead", ErrDeposed, leader)
	}
	if term != ld.currentTerm {
		return fmt.Errorf("%w: proposing term %d but replica %d is at term %d", ErrDeposed, term, leader, ld.currentTerm)
	}
	if int(e.Epoch) != len(ld.log) {
		return fmt.Errorf("shard: append epoch %d but leader log has %d entries", e.Epoch, len(ld.log))
	}
	e.Term = term
	ld.log = append(ld.log, e)
	acks := 1
	for _, r := range c.replicas {
		if r.id == leader || !c.reachable(leader, r.id) {
			continue
		}
		if r.currentTerm > term {
			// A newer term exists: step down without committing. The
			// leader's own uncommitted tail is dropped when a new leader
			// (possibly itself) is elected.
			ld.currentTerm = r.currentTerm
			ld.votedFor = -1
			return fmt.Errorf("%w: replica %d is at newer term %d", ErrDeposed, r.id, r.currentTerm)
		}
		r.currentTerm = term
		// Truncate everything past the longest prefix shared with the
		// leader's log, replay the leader's entries from there (catch-up:
		// conflicting suffixes are overwritten, missing epochs filled in —
		// committed entries always survive because the election restriction
		// guarantees the leader holds them, so they match and are kept),
		// then append e and ack.
		n := len(r.log)
		if n > int(e.Epoch) {
			n = int(e.Epoch)
		}
		match := 0
		for match < n && r.log[match].Term == ld.log[match].Term && r.log[match].Digest == ld.log[match].Digest {
			match++
		}
		r.log = append(r.log[:match], ld.log[match:]...)
		acks++
	}
	if acks < c.quorum() {
		return fmt.Errorf("%w: epoch %d term %d got %d/%d acks", ErrDeposed, e.Epoch, term, acks, c.quorum())
	}
	return nil
}

// Committed returns the latest entry replicated on a majority of
// replicas (dead ones' logs count — they persist), or ok=false for an
// empty cluster log. This is what a newly elected leader restores from.
func (c *Cluster) Committed() (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for idx := c.maxLogLen() - 1; idx >= 0; idx-- {
		if e, ok := c.committedAt(uint64(idx)); ok {
			return e, true
		}
	}
	return Entry{}, false
}

// CommittedAt returns the committed entry at one epoch index, if any.
func (c *Cluster) CommittedAt(epoch uint64) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.committedAt(epoch)
}

func (c *Cluster) maxLogLen() int {
	n := 0
	for _, r := range c.replicas {
		if len(r.log) > n {
			n = len(r.log)
		}
	}
	return n
}

// committedAt reports the entry at idx present on a quorum (matching
// term+digest). Callers hold mu.
func (c *Cluster) committedAt(idx uint64) (Entry, bool) {
	type key struct {
		term   uint64
		digest uint64
	}
	count := make(map[key]int)
	var best Entry
	for _, r := range c.replicas {
		if int(idx) >= len(r.log) {
			continue
		}
		e := r.log[idx]
		k := key{e.Term, e.Digest}
		count[k]++
		if count[k] >= c.quorum() {
			best = e
			return best, true
		}
	}
	return Entry{}, false
}

// TermsAt returns the distinct terms present at one epoch index across
// ALL replica logs (committed or not) — the observable a split-brain
// test uses: committed entries must agree, stray uncommitted terms may
// linger on minority replicas until overwritten.
func (c *Cluster) TermsAt(epoch uint64) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[uint64]bool)
	var terms []uint64
	for _, r := range c.replicas {
		if int(epoch) < len(r.log) {
			t := r.log[epoch].Term
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
		}
	}
	return terms
}

// CommittedTermsAt returns the terms with a full quorum of matching
// replicas at an epoch index. The replication safety property — "at most
// one term certifies an epoch" — says this never has more than one
// element.
func (c *Cluster) CommittedTermsAt(epoch uint64) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	count := make(map[uint64]int)
	for _, r := range c.replicas {
		if int(epoch) < len(r.log) {
			e := r.log[epoch]
			count[e.Term]++
		}
	}
	var terms []uint64
	for t, n := range count {
		if n >= c.quorum() {
			terms = append(terms, t)
		}
	}
	return terms
}

// LogLen returns one replica's log length (introspection for tests).
func (c *Cluster) LogLen(id int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.replicas[id].log)
}

// Term returns one replica's current term.
func (c *Cluster) Term(id int) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicas[id].currentTerm
}
