package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestClusterElectionAndAppend: the green path — elect, append a few
// epochs, read them back committed under one term.
func TestClusterElectionAndAppend(t *testing.T) {
	c := NewCluster(3)
	term, err := c.TryElect(0)
	if err != nil {
		t.Fatal(err)
	}
	if term != 1 {
		t.Fatalf("first term = %d, want 1", term)
	}
	for e := uint64(0); e < 4; e++ {
		if err := c.Append(0, term, Entry{Epoch: e, Digest: 100 + e}); err != nil {
			t.Fatalf("append epoch %d: %v", e, err)
		}
		got, ok := c.CommittedAt(e)
		if !ok || got.Digest != 100+e || got.Term != term {
			t.Fatalf("epoch %d: committed=%v entry=%+v", e, ok, got)
		}
		if terms := c.CommittedTermsAt(e); len(terms) != 1 || terms[0] != term {
			t.Fatalf("epoch %d committed terms = %v", e, terms)
		}
	}
	if last, ok := c.Committed(); !ok || last.Epoch != 3 {
		t.Fatalf("Committed = %+v (ok=%v), want epoch 3", last, ok)
	}
	// Out-of-order epochs are rejected outright.
	if err := c.Append(0, term, Entry{Epoch: 9}); err == nil {
		t.Fatal("append with an epoch gap succeeded")
	}
}

// TestClusterQuorumRules: dead replicas break elections and appends
// exactly at the majority threshold; revival restores it.
func TestClusterQuorumRules(t *testing.T) {
	c := NewCluster(3)
	term, err := c.TryElect(0)
	if err != nil {
		t.Fatal(err)
	}
	c.Kill(1)
	if err := c.Append(0, term, Entry{Epoch: 0, Digest: 1}); err != nil {
		t.Fatalf("append with 2/3 alive: %v", err)
	}
	c.Kill(2)
	if err := c.Append(0, term, Entry{Epoch: 1, Digest: 2}); !errors.Is(err, ErrDeposed) {
		t.Fatalf("append with 1/3 alive: err=%v, want ErrDeposed", err)
	}
	if _, err := c.TryElect(0); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("election with 1/3 alive: err=%v, want ErrNoQuorum", err)
	}
	if _, err := c.TryElect(1); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("dead candidate: err=%v, want ErrNoQuorum", err)
	}
	c.Revive(1)
	// Replica 1 was dead while epoch 0 committed, so the election
	// restriction must keep it from leading even after revival.
	if _, err := c.TryElect(1); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("stale revived candidate: err=%v, want ErrNoQuorum", err)
	}
	// The up-to-date replica leads, with the revived one as its voter.
	// Failed candidacies bumped terms, so (like Raft) it may need another
	// round before its term overtakes every voter's.
	term2, err := c.TryElect(0)
	for retries := 0; err != nil && retries < 3; retries++ {
		term2, err = c.TryElect(0)
	}
	if err != nil {
		t.Fatalf("election after revival: %v", err)
	}
	if term2 <= term {
		t.Fatalf("new term %d not beyond old term %d", term2, term)
	}
	// The dead leader's lone epoch-1 entry never committed.
	if _, ok := c.CommittedAt(1); ok {
		t.Fatal("uncommitted epoch 1 reported committed")
	}
}

// TestClusterElectionRestriction: a replica whose log misses committed
// entries cannot win an election (Raft's up-to-date check), so every
// electable leader holds every committed epoch.
func TestClusterElectionRestriction(t *testing.T) {
	c := NewCluster(3)
	term, err := c.TryElect(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(0, term, Entry{Epoch: 0, Digest: 7}); err != nil {
		t.Fatal(err)
	}
	// Isolate the leader; the majority moves on without it.
	c.Partition([]int{0})
	term1, err := c.TryElect(1)
	if err != nil {
		t.Fatalf("majority election: %v", err)
	}
	if err := c.Append(1, term1, Entry{Epoch: 1, Digest: 8}); err != nil {
		t.Fatalf("majority append: %v", err)
	}
	c.Heal()
	// The healed ex-leader misses epoch 1: its candidacy must fail.
	if _, err := c.TryElect(0); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("stale candidate won: err=%v, want ErrNoQuorum", err)
	}
	// Its stale-term appends must also fail.
	if err := c.Append(0, term, Entry{Epoch: 1, Digest: 9}); !errors.Is(err, ErrDeposed) {
		t.Fatalf("stale-term append: err=%v, want ErrDeposed", err)
	}
	// The up-to-date replica re-elects and continues.
	term2, err := c.TryElect(1)
	if err != nil {
		t.Fatalf("re-election: %v", err)
	}
	if err := c.Append(1, term2, Entry{Epoch: 2, Digest: 10}); err != nil {
		t.Fatalf("append after re-election: %v", err)
	}
	for e := uint64(0); e <= 2; e++ {
		if terms := c.CommittedTermsAt(e); len(terms) != 1 {
			t.Fatalf("epoch %d committed terms = %v, want exactly one", e, terms)
		}
	}
}

// TestClusterConflictTruncation: an isolated leader's uncommitted entry
// must be truncated when the healed replica receives the majority's
// conflicting entry at the same index — and at no point may two terms
// both commit one epoch.
func TestClusterConflictTruncation(t *testing.T) {
	c := NewCluster(5)
	term, err := c.TryElect(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(0, term, Entry{Epoch: 0, Digest: 1}); err != nil {
		t.Fatal(err)
	}
	// Minority side {0,1}: leader 0 appends epoch 1 — no quorum, but the
	// entry lands in its own (and 1's) log.
	c.Partition([]int{0, 1})
	if err := c.Append(0, term, Entry{Epoch: 1, Digest: 66}); !errors.Is(err, ErrDeposed) {
		t.Fatalf("minority append: err=%v, want ErrDeposed", err)
	}
	// Majority side elects 2 and commits a DIFFERENT epoch 1.
	term2, err := c.TryElect(2)
	if err != nil {
		t.Fatalf("majority election: %v", err)
	}
	if err := c.Append(2, term2, Entry{Epoch: 1, Digest: 77}); err != nil {
		t.Fatalf("majority append: %v", err)
	}
	if terms := c.TermsAt(1); len(terms) != 2 {
		t.Fatalf("divergent logs should show 2 terms at epoch 1, got %v", terms)
	}
	if terms := c.CommittedTermsAt(1); len(terms) != 1 || terms[0] != term2 {
		t.Fatalf("committed terms at epoch 1 = %v, want [%d]", terms, term2)
	}
	// Heal; the next append overwrites the minority's conflicting suffix.
	c.Heal()
	if err := c.Append(2, term2, Entry{Epoch: 2, Digest: 88}); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if terms := c.TermsAt(1); len(terms) != 1 || terms[0] != term2 {
		t.Fatalf("epoch 1 terms after truncation = %v, want [%d]", terms, term2)
	}
	if e, ok := c.CommittedAt(1); !ok || e.Digest != 77 {
		t.Fatalf("epoch 1 after heal = %+v (ok=%v), want the majority's digest 77", e, ok)
	}
}

// TestSplitBrainAtMostOneTerm is the seeded split-brain battery: five
// replicas, four concurrent proposers, and a fault injector that
// partitions, kills, heals and revives on a fixed seed — all under the
// race detector. The safety property under test: at every epoch index,
// at most one term ever assembles a commit quorum, no matter how the
// proposals interleave.
func TestSplitBrainAtMostOneTerm(t *testing.T) {
	const (
		replicas  = 5
		proposers = 4
		rounds    = 60
	)
	c := NewCluster(replicas)
	var wg sync.WaitGroup
	for pr := 0; pr < proposers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + pr)))
			for i := 0; i < rounds; i++ {
				cand := rng.Intn(replicas)
				term, err := c.TryElect(cand)
				if err != nil {
					continue
				}
				// Propose a few epochs under the won term; digests encode
				// the proposer so divergent proposals never collide.
				for k := 0; k < 3; k++ {
					epoch := uint64(c.LogLen(cand))
					digest := uint64(pr)<<32 | uint64(i)<<8 | uint64(k)
					if err := c.Append(cand, term, Entry{Epoch: epoch, Digest: digest}); err != nil {
						break
					}
				}
			}
		}(pr)
	}
	// The fault injector: seeded partitions and crashes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < rounds; i++ {
			switch rng.Intn(4) {
			case 0:
				// Random two-way partition.
				var side []int
				for id := 0; id < replicas; id++ {
					if rng.Intn(2) == 0 {
						side = append(side, id)
					}
				}
				c.Partition(side)
			case 1:
				c.Kill(rng.Intn(replicas))
			case 2:
				c.Revive(rng.Intn(replicas))
			case 3:
				c.Heal()
			}
		}
		c.Heal()
		for id := 0; id < replicas; id++ {
			c.Revive(id)
		}
	}()
	wg.Wait()

	maxLen := 0
	for id := 0; id < replicas; id++ {
		if n := c.LogLen(id); n > maxLen {
			maxLen = n
		}
	}
	if maxLen == 0 {
		t.Fatal("no proposal ever landed in any log")
	}
	committed := 0
	for e := 0; e < maxLen; e++ {
		terms := c.CommittedTermsAt(uint64(e))
		if len(terms) > 1 {
			t.Fatalf("epoch %d committed under %d terms: %v", e, len(terms), terms)
		}
		committed += len(terms)
	}
	if committed == 0 {
		t.Fatal("no epoch ever committed across the whole battery")
	}
	// After healing, the cluster must still be able to make progress.
	var term uint64
	var err error
	for cand := 0; cand < replicas; cand++ {
		if term, err = c.TryElect(cand); err == nil {
			if err = c.Append(cand, term, Entry{Epoch: uint64(c.LogLen(cand)), Digest: 424242}); err == nil {
				break
			}
		}
	}
	if err != nil {
		t.Fatalf("healed cluster cannot commit: %v", err)
	}
	t.Logf("split-brain battery: %d epochs committed, max log %d", committed, maxLen)
}
