package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// ErrNoLeader reports that the plane currently has no elected leader
// (the last one died or was deposed); call Failover to elect one.
var ErrNoLeader = errors.New("shard: no leader, run failover")

// Options configures a Plane.
type Options struct {
	// Shards is the number of topology-aware regions (default 1).
	Shards int
	// Replicas is the epoch-log replication factor (default 1). Quorum is
	// a strict majority, so 3 replicas survive one crash, 5 survive two.
	Replicas int
	// Fabric configures the embedded routing computation — the SAME
	// options a monolithic fabric.Manager would take. Fabric.OnPublish is
	// called once per committed epoch (leader publication);
	// Fabric.Workers is unused (scheduling is region-affine).
	Fabric fabric.Options
	// OnReplicate, when non-nil, is called for every ALIVE replica after
	// an epoch commits — the per-replica distribution seam (hand the
	// snapshot to that replica's distrib.Source so a standby publisher
	// can serve agents after failover).
	OnReplicate func(replica int, snap *fabric.Snapshot)
	// Telemetry, when non-nil, receives shard_* counters.
	Telemetry *telemetry.ShardMetrics
}

// Report describes one sharded Apply: the fabric repair report plus the
// control-plane view — which term/leader committed it, how the layer
// jobs were scheduled across regions, and whether the seam had to be
// certified (and vetoed).
type Report struct {
	fabric.EventReport
	// Term and Leader identify the committing leadership.
	Term   uint64
	Leader int
	// LocalJobs counts layer repairs run on their home region's shard;
	// SeamJobs those escalated to the coordinator because their
	// destinations span regions.
	LocalJobs, SeamJobs int
	// SeamCertified is true when the coordinator ran the oracle on the
	// seam. SeamVeto carries the oracle witness when the proposed tables
	// themselves were refuted (deadlock or owed route) — the plane then
	// discarded them and recovered via a certified full recompute.
	// SeamDrain is true when the tables stand but the cross-region old+new
	// union was refuted, so the per-switch swap must be drained (the flag
	// the distribution plane's own certifier re-derives); it does not
	// change what is published, keeping sharded tables digest-equal to the
	// monolithic manager's.
	SeamCertified bool
	SeamVeto      error
	SeamDrain     bool
}

// Metrics aggregates a plane's lifetime, extending the fabric repair
// aggregates with control-plane counters.
type Metrics struct {
	fabric.Metrics
	LocalJobs, SeamJobs                   int
	SeamCertified, SeamVetoes, SeamDrains int
	EpochsCommitted, Deposals             int
	Elections                             int
}

// Plane is a sharded, replicated fabric control plane. It exposes the
// same Apply/View/Epoch surface as fabric.Manager, but every published
// epoch is first committed to a majority of replicas under a leadership
// term, layer repairs are scheduled region-affine, and cross-region
// dependency changes are union-certified on the seam before commit.
type Plane struct {
	opts    Options
	regions *Regions
	cluster *Cluster

	snap atomic.Pointer[fabric.Snapshot]

	mu      sync.Mutex // serializes Apply/Failover; guards below
	leader  int        // current leader replica, -1 when none
	term    uint64
	st      *fabric.State
	run     *fabric.Runner
	metrics Metrics

	// beforeCommit, when non-nil, runs after the repair computation and
	// before the quorum append — the hook failover tests use to kill the
	// leader deterministically mid-apply.
	beforeCommit func()
	// tamper, when non-nil, mutates the candidate result after repair and
	// before seam certification — the mutation-test hook for proving the
	// coordinator vetoes cycle-forming seam proposals.
	tamper func(*graph.Network, *routing.Result)
}

// New partitions tp, routes it from scratch, elects replica 0 leader and
// commits the initial epoch to a quorum.
func New(tp *topology.Topology, opts Options) (*Plane, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	p := &Plane{
		opts:    opts,
		regions: Partition(tp, opts.Shards),
		cluster: NewCluster(opts.Replicas),
		leader:  -1,
	}
	st := fabric.NewState(tp.Net)
	run := fabric.NewRunner(opts.Fabric)
	snap, err := fabric.InitialEpoch(st, run)
	if err != nil {
		return nil, err
	}
	term, err := p.cluster.TryElect(0)
	if err != nil {
		return nil, err
	}
	p.leader, p.term = 0, term
	p.metrics.Elections++
	if err := p.commit(snap, st, fabric.Event{}); err != nil {
		return nil, err
	}
	p.st, p.run = st, run
	p.publish(snap)
	if t := opts.Telemetry; t != nil {
		t.Elections.Inc()
		t.Term.Set(int64(term))
		t.Leader.Set(0)
	}
	return p, nil
}

// commit appends the epoch to the replicated log under the current term.
// Callers hold mu (or run before the plane is shared).
func (p *Plane) commit(snap *fabric.Snapshot, st *fabric.State, ev fabric.Event) error {
	linkFailed, nodeDown := st.Bookkeeping()
	err := p.cluster.Append(p.leader, p.term, Entry{
		Epoch:      snap.Epoch,
		Digest:     snap.Result.Table.Digest(),
		Snap:       snap,
		LinkFailed: linkFailed,
		NodeDown:   nodeDown,
		Event:      ev,
	})
	if err != nil {
		p.leader = -1 // deposed or dead: stop proposing until failover
		p.metrics.Deposals++
		if t := p.opts.Telemetry; t != nil {
			t.Deposed.Inc()
			t.Leader.Set(-1)
		}
		return err
	}
	p.metrics.EpochsCommitted++
	if t := p.opts.Telemetry; t != nil {
		t.EpochsCommitted.Inc()
	}
	return nil
}

// publish installs a committed snapshot for readers and fans it out to
// the leader publication hook and every alive replica.
func (p *Plane) publish(snap *fabric.Snapshot) {
	p.snap.Store(snap)
	if p.opts.Fabric.OnPublish != nil {
		p.opts.Fabric.OnPublish(snap)
	}
	if p.opts.OnReplicate != nil {
		for id := 0; id < p.cluster.Size(); id++ {
			if p.cluster.Alive(id) {
				p.opts.OnReplicate(id, snap)
			}
		}
	}
}

// Apply processes one churn event through the sharded plane: repair
// (region-affine scheduling, seam certification), quorum commit, publish.
// The forwarding tables it publishes are digest-equal to what a
// monolithic fabric.Manager publishes for the same trace — scheduling
// and ownership differ, the computation does not.
func (p *Plane) Apply(ev fabric.Event) (*Report, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.leader < 0 {
		return nil, ErrNoLeader
	}
	start := time.Now()
	old := p.snap.Load()
	rep := &Report{Term: p.term, Leader: p.leader}
	rep.Event = ev
	rep.Epoch = old.Epoch
	rep.TotalDests = len(old.Result.Table.Dests())

	changed := p.st.Mutate(ev)
	if len(changed) == 0 {
		rep.NoOp = true
		rep.Latency = time.Since(start)
		p.metrics.Add(&rep.EventReport)
		return rep, nil
	}

	newNet := p.st.Working().Clone()
	res, repaired, err := p.run.Retable(p.st, old, newNet, changed, &rep.EventReport, p.regionExec(newNet, rep))
	if err != nil {
		p.st.Revert(ev, changed)
		return nil, fmt.Errorf("shard: %s: %w", ev, err)
	}
	if p.tamper != nil {
		p.tamper(newNet, res)
	}

	// Seam certification: when the DEPENDENCY change crossed a region
	// boundary — a seam channel flipped, or the repair changed which seam
	// channels serve a destination — the coordinator certifies the
	// cross-region old+new CDG union (UPR-style,
	// oracle.CertifyTransition) before anything may commit. Scheduling
	// escalation (SeamJobs) is deliberately NOT the trigger: a job runs
	// on the coordinator merely because its destinations span regions,
	// which says nothing about the seam's dependency structure, and
	// certifying every such epoch would put two oracle passes on the
	// common publish path (TestBenchGuardShard pins the ratio).
	//
	// A refuted union is then attributed. Almost always the new tables
	// are clean and the cycle only means the per-switch swap cannot run
	// unsynchronized — the tables stand and the epoch carries a drain
	// requirement, exactly like the distribution plane's own certifier
	// decides. But if the PROPOSAL itself is refuted (a cycle in its own
	// dependency graph — only possible through corruption, the mutation
	// test's territory), it is vetoed, discarded and recovered by a
	// from-scratch recompute that must certify. Attribution is staged by
	// cost: the walkless CertifyDeps screen on every refuted union, the
	// full walk-based Certify (whose witness the veto carries) only on
	// structural suspicion. Keeping the union check advisory is what
	// preserves digest equality with the monolithic manager: widened
	// layer rebuilds legitimately produce drain-requiring transitions.
	if p.seamEscalated(newNet, old.Result.Table, res.Table, repaired, changed) {
		rep.SeamCertified = true
		p.metrics.SeamCertified++
		if t := p.opts.Telemetry; t != nil {
			t.SeamCertified.Inc()
		}
		if _, terr := oracle.CertifyTransition(newNet, old.Result, res, oracle.Options{}); terr != nil {
			veto := false
			if _, derr := oracle.CertifyDeps(newNet, res, oracle.Options{}); derr != nil {
				_, cerr := oracle.Certify(newNet, res, oracle.Options{})
				veto = cerr != nil
				if veto {
					rep.SeamVeto = cerr
					p.metrics.SeamVetoes++
					if t := p.opts.Telemetry; t != nil {
						t.SeamVetoes.Inc()
					}
					res, err = p.run.FullRecompute(p.st, newNet, changed, &rep.EventReport)
					if err == nil {
						_, err = oracle.Certify(newNet, res, oracle.Options{})
					}
					if err != nil {
						p.st.Revert(ev, changed)
						return nil, fmt.Errorf("shard: %s: seam veto unrecoverable: %w", ev, err)
					}
					repaired = nil
					if _, terr := oracle.CertifyTransition(newNet, old.Result, res, oracle.Options{}); terr != nil {
						rep.SeamDrain = true
					}
				}
			}
			if !veto {
				rep.SeamDrain = true
			}
			if rep.SeamDrain {
				p.metrics.SeamDrains++
				if t := p.opts.Telemetry; t != nil {
					t.SeamDrains.Inc()
				}
			}
		}
	}

	if p.beforeCommit != nil {
		p.beforeCommit()
	}

	rep.Delta = routing.Diff(old.Result.Table, res.Table)
	rep.Epoch = old.Epoch + 1
	snap := &fabric.Snapshot{Epoch: rep.Epoch, Net: newNet, Result: res}
	if err := p.commit(snap, p.st, ev); err != nil {
		// The term lost its quorum (leader killed or partitioned away):
		// nothing was published; a successor recomputes from the last
		// committed epoch.
		p.st.Revert(ev, changed)
		return nil, fmt.Errorf("shard: %s: %w", ev, err)
	}

	// Only a committed epoch may update the derived indexes and become
	// visible to readers and agents.
	if rep.FullRecompute {
		p.st.RebuildIndex(res.Table)
	} else {
		for _, d := range repaired {
			p.st.ReindexDest(res.Table, d)
		}
	}
	p.st.ReindexCast(res.Cast)
	rep.Latency = time.Since(start)
	p.publish(snap)
	p.metrics.Add(&rep.EventReport)
	p.metrics.LocalJobs += rep.LocalJobs
	p.metrics.SeamJobs += rep.SeamJobs
	p.recordEpoch(rep)
	return rep, nil
}

// regionExec schedules layer jobs region-affine: jobs whose repair
// destinations live in one region run on that region's shard goroutine
// (sequentially within a shard — each shard is one controller), jobs
// spanning regions run on the coordinator (the calling goroutine).
func (p *Plane) regionExec(newNet *graph.Network, rep *Report) fabric.JobExecutor {
	return func(jobs []fabric.LayerJob, run func(i int)) {
		byRegion := make(map[int][]int)
		var coord []int
		for i, j := range jobs {
			if home := p.regions.HomeRegion(nil, j.Repair, newNet); home >= 0 {
				byRegion[home] = append(byRegion[home], i)
			} else {
				coord = append(coord, i)
			}
		}
		rep.LocalJobs += len(jobs) - len(coord)
		rep.SeamJobs += len(coord)
		if t := p.opts.Telemetry; t != nil {
			t.LocalJobs.Add(int64(len(jobs) - len(coord)))
			t.SeamJobs.Add(int64(len(coord)))
		}
		var wg sync.WaitGroup
		for _, idxs := range byRegion {
			wg.Add(1)
			go func(idxs []int) {
				defer wg.Done()
				for _, i := range idxs {
					run(i)
				}
			}(idxs)
		}
		for _, i := range coord {
			run(i)
		}
		wg.Wait()
	}
}

// seamEscalated reports whether the event changed the dependency
// structure ON the seam: a seam channel itself flipped, or the repair
// changed a repaired destination's seam occupancy — which seam channels
// carry it (usage toggled at the channel's tail) or where it continues
// after crossing (the next hop at a used seam channel's head changed).
// Entries of non-repaired destinations are untouched by contract, so
// only the repaired columns are scanned; a full recompute (repaired ==
// nil) scans every destination.
func (p *Plane) seamEscalated(net *graph.Network, oldT, newT *routing.Table, repaired []graph.NodeID, changed []graph.ChannelID) bool {
	for _, c := range changed {
		if p.regions.Seam(c) {
			return true
		}
	}
	dests := repaired
	if dests == nil {
		dests = newT.Dests()
	}
	for _, c := range p.regions.SeamChannels() {
		ch := net.Channel(c)
		for _, d := range dests {
			usedOld := oldT.Next(ch.From, d) == c
			if usedOld != (newT.Next(ch.From, d) == c) {
				return true
			}
			if usedOld && oldT.Next(ch.To, d) != newT.Next(ch.To, d) {
				return true
			}
		}
	}
	return false
}

// Failover elects a new leader deterministically — the lowest-numbered
// alive replica that can assemble a vote quorum — and rebuilds the
// controller state from the last committed epoch: restored bookkeeping,
// rebuilt inverted indexes, fresh runner (escape-root caches start
// cold). Returns the new leader and term.
func (p *Plane) Failover() (leader int, term uint64, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var lastErr error = ErrNoQuorum
	for id := 0; id < p.cluster.Size(); id++ {
		if !p.cluster.Alive(id) {
			continue
		}
		t, e := p.cluster.TryElect(id)
		if e != nil {
			lastErr = e
			continue
		}
		entry, ok := p.cluster.Committed()
		if !ok {
			return -1, 0, errors.New("shard: no committed epoch to restore from")
		}
		p.leader, p.term = id, t
		p.st = fabric.RestoreState(entry.Snap.Net, entry.LinkFailed, entry.NodeDown)
		p.st.RebuildIndex(entry.Snap.Result.Table)
		p.st.ReindexCast(entry.Snap.Result.Cast)
		p.run = fabric.NewRunner(p.opts.Fabric)
		p.snap.Store(entry.Snap)
		p.metrics.Elections++
		if tm := p.opts.Telemetry; tm != nil {
			tm.Elections.Inc()
			tm.Term.Set(int64(t))
			tm.Leader.Set(int64(id))
		}
		return id, t, nil
	}
	return -1, 0, lastErr
}

// Kill marks a replica dead (fault injection). Killing the leader does
// not interrupt an in-flight Apply's computation — its quorum append
// simply fails, so the epoch never commits; the plane then reports
// ErrNoLeader until Failover.
func (p *Plane) Kill(id int) { p.cluster.Kill(id) }

// Revive brings a dead replica back (log intact).
func (p *Plane) Revive(id int) { p.cluster.Revive(id) }

// Cluster exposes the replicated log for tests and fault injection.
func (p *Plane) Cluster() *Cluster { return p.cluster }

// Regions exposes the partition.
func (p *Plane) Regions() *Regions { return p.regions }

// View returns the current committed snapshot.
func (p *Plane) View() *fabric.Snapshot { return p.snap.Load() }

// Epoch returns the current committed epoch.
func (p *Plane) Epoch() uint64 { return p.snap.Load().Epoch }

// NextHop mirrors fabric.Manager.NextHop on the committed snapshot.
func (p *Plane) NextHop(n, d graph.NodeID) graph.ChannelID {
	return p.snap.Load().Result.Table.Next(n, d)
}

// Leader returns the current leader replica (-1 when none) and term.
func (p *Plane) Leader() (int, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.leader, p.term
}

// Metrics returns a copy of the lifetime aggregates.
func (p *Plane) Metrics() Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.metrics
}

// SetBeforeCommit installs a hook running between repair computation and
// quorum append (test-only: deterministic mid-apply fault injection).
func (p *Plane) SetBeforeCommit(f func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.beforeCommit = f
}

// TamperForTest installs a result-mutation hook running before seam
// certification (test-only: prove the coordinator vetoes cycle-forming
// seam proposals with a concrete oracle witness).
func (p *Plane) TamperForTest(f func(*graph.Network, *routing.Result)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tamper = f
}

// recordEpoch emits one committed epoch into the telemetry ring.
func (p *Plane) recordEpoch(rep *Report) {
	t := p.opts.Telemetry
	if t == nil {
		return
	}
	t.Term.Set(int64(rep.Term))
	t.Leader.Set(int64(rep.Leader))
	seam := int64(0)
	if rep.SeamCertified {
		seam = 1
	}
	drain := int64(0)
	if rep.SeamDrain {
		drain = 1
	}
	t.Events.Emit("shard_epoch", map[string]int64{
		"epoch":      int64(rep.Epoch),
		"term":       int64(rep.Term),
		"leader":     int64(rep.Leader),
		"local_jobs": int64(rep.LocalJobs),
		"seam_jobs":  int64(rep.SeamJobs),
		"seam_cert":  seam,
		"seam_drain": drain,
		"latency_ns": rep.Latency.Nanoseconds(),
	})
}
