package shard

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fabric"
	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/routing"
	"repro/internal/routing/verify"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// churnGen draws connectivity-preserving churn events against its own
// shadow fabric.State, so tests can drive a Plane (which exposes no
// event generator) with the same trace semantics fabric.Manager tests
// use. next tracks the event as applied; a test that re-proposes a
// failed event must reuse the returned event, not draw a new one.
type churnGen struct {
	st  *fabric.State
	rng *rand.Rand
}

func newChurnGen(tp *topology.Topology, seed int64) *churnGen {
	return &churnGen{st: fabric.NewState(tp.Net), rng: rand.New(rand.NewSource(seed))}
}

func (g *churnGen) next(t *testing.T, pJoin float64) fabric.Event {
	t.Helper()
	ev, ok := g.st.RandomEvent(g.rng, pJoin)
	if !ok {
		t.Fatal("no churn event possible")
	}
	g.st.Mutate(ev)
	return ev
}

// assertCommitted checks the published snapshot against the replicated
// log: the epoch must be committed, under exactly one term, with the
// published table's digest.
func assertCommitted(t *testing.T, p *Plane) {
	t.Helper()
	snap := p.View()
	entry, ok := p.Cluster().CommittedAt(snap.Epoch)
	if !ok {
		t.Fatalf("published epoch %d not committed on a quorum", snap.Epoch)
	}
	if got, want := entry.Digest, snap.Result.Table.Digest(); got != want {
		t.Fatalf("epoch %d: committed digest %#x, published %#x", snap.Epoch, got, want)
	}
	if terms := p.Cluster().CommittedTermsAt(snap.Epoch); len(terms) != 1 {
		t.Fatalf("epoch %d committed under terms %v, want exactly one", snap.Epoch, terms)
	}
}

// TestPlaneChurnDragonfly drives link churn through a 4-shard, 3-replica
// plane on a Dragonfly: every epoch must verify, commit to a quorum
// under one term, and be digest-recorded in the replicated log; the
// telemetry counters must mirror the plane's aggregates.
func TestPlaneChurnDragonfly(t *testing.T) {
	reg := telemetry.New()
	tp := topology.Dragonfly(4, 2, 2, 9)
	p, err := New(tp, Options{
		Shards:    4,
		Replicas:  3,
		Fabric:    fabric.Options{MaxVCs: 4, Seed: 1, Verify: true},
		Telemetry: reg.Shard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if leader, term := p.Leader(); leader != 0 || term != 1 {
		t.Fatalf("initial leadership = (%d, %d), want (0, 1)", leader, term)
	}
	assertCommitted(t, p)

	gen := newChurnGen(tp, 7)
	const events = 12
	for i := 0; i < events; i++ {
		ev := gen.next(t, 0.3)
		rep, err := p.Apply(ev)
		if err != nil {
			t.Fatalf("event %d (%s): %v", i, ev, err)
		}
		if rep.NoOp {
			t.Fatalf("event %d (%s): unexpected no-op", i, ev)
		}
		if rep.Term != 1 || rep.Leader != 0 {
			t.Fatalf("event %d committed under (%d, %d), want (0, 1)", i, rep.Leader, rep.Term)
		}
		snap := p.View()
		if snap.Epoch != rep.Epoch || snap.Epoch != uint64(i+1) {
			t.Fatalf("event %d: snapshot epoch %d, report %d, want %d", i, snap.Epoch, rep.Epoch, i+1)
		}
		if !rep.Verified {
			t.Fatalf("event %d: transition not verified", i)
		}
		if _, err := verify.Check(snap.Net, snap.Result, nil); err != nil {
			t.Fatalf("event %d: published snapshot invalid: %v", i, err)
		}
		if rep.SeamVeto != nil {
			t.Fatalf("event %d: legitimate repair vetoed: %v", i, rep.SeamVeto)
		}
		assertCommitted(t, p)
	}

	m := p.Metrics()
	if m.Events != events {
		t.Fatalf("metrics counted %d events, want %d", m.Events, events)
	}
	if m.EpochsCommitted != events+1 {
		t.Fatalf("epochs committed = %d, want %d (initial + events)", m.EpochsCommitted, events+1)
	}
	if m.LocalJobs+m.SeamJobs == 0 {
		t.Fatal("no layer job was ever scheduled")
	}
	if m.SeamVetoes != 0 {
		t.Fatalf("%d seam vetoes on legitimate churn", m.SeamVetoes)
	}
	if m.Deposals != 0 || m.Elections != 1 {
		t.Fatalf("unexpected leadership churn: %d deposals, %d elections", m.Deposals, m.Elections)
	}

	s := reg.Snapshot()
	if got := s.Counters["shard_epochs_committed_total"]; got != int64(m.EpochsCommitted) {
		t.Errorf("shard_epochs_committed_total = %d, want %d", got, m.EpochsCommitted)
	}
	if got := s.Counters["shard_local_jobs_total"] + s.Counters["shard_seam_jobs_total"]; got != int64(m.LocalJobs+m.SeamJobs) {
		t.Errorf("job counters = %d, want %d", got, m.LocalJobs+m.SeamJobs)
	}
	if s.Gauges["shard_term"] != 1 || s.Gauges["shard_leader"] != 0 {
		t.Errorf("telemetry leadership = (%d, %d), want (0, 1)",
			s.Gauges["shard_leader"], s.Gauges["shard_term"])
	}
}

// TestKillLeaderMidRepair kills the leader BETWEEN the repair
// computation and the quorum append (the beforeCommit hook): the epoch
// must not commit or publish, the plane must refuse further events
// until failover, and the re-proposed event must commit cleanly under
// the successor's term — with zero uncertified epochs throughout.
func TestKillLeaderMidRepair(t *testing.T) {
	tp := topology.Dragonfly(4, 2, 2, 9)
	p, err := New(tp, Options{
		Shards:   4,
		Replicas: 3,
		Fabric:   fabric.Options{MaxVCs: 4, Seed: 1, Verify: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := newChurnGen(tp, 11)
	for i := 0; i < 3; i++ {
		if _, err := p.Apply(gen.next(t, 0.3)); err != nil {
			t.Fatalf("warm-up event %d: %v", i, err)
		}
	}
	before := p.View()

	// Arm the mid-repair kill: the leader dies after computing the repair
	// but before proposing it to the log.
	armed := true
	p.SetBeforeCommit(func() {
		if armed {
			armed = false
			p.Kill(0)
		}
	})
	ev := gen.next(t, 0.3)
	if _, err := p.Apply(ev); !errors.Is(err, ErrDeposed) {
		t.Fatalf("apply with killed leader: err=%v, want ErrDeposed", err)
	}
	p.SetBeforeCommit(nil)

	// Nothing may have committed or published.
	if got := p.View(); got.Epoch != before.Epoch {
		t.Fatalf("epoch moved to %d after a failed commit, want %d", got.Epoch, before.Epoch)
	}
	if _, ok := p.Cluster().CommittedAt(before.Epoch + 1); ok {
		t.Fatal("the aborted epoch reached a commit quorum")
	}
	if terms := p.Cluster().CommittedTermsAt(before.Epoch + 1); len(terms) != 0 {
		t.Fatalf("aborted epoch committed under terms %v", terms)
	}

	// The plane refuses events until failover.
	if _, err := p.Apply(ev); !errors.Is(err, ErrNoLeader) {
		t.Fatalf("apply without leader: err=%v, want ErrNoLeader", err)
	}

	leader, term, err := p.Failover()
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if leader != 1 || term < 2 {
		t.Fatalf("failover elected (%d, %d), want replica 1 at a later term", leader, term)
	}
	if got := p.View(); got.Epoch != before.Epoch {
		t.Fatalf("failover restored epoch %d, want %d", got.Epoch, before.Epoch)
	}

	// Re-propose the same event on the successor: it must commit.
	rep, err := p.Apply(ev)
	if err != nil {
		t.Fatalf("re-proposed event: %v", err)
	}
	if rep.Leader != 1 || rep.Term != term {
		t.Fatalf("re-proposed epoch committed under (%d, %d), want (1, %d)", rep.Leader, rep.Term, term)
	}
	snap := p.View()
	if snap.Epoch != before.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", snap.Epoch, before.Epoch+1)
	}
	if _, err := verify.Check(snap.Net, snap.Result, nil); err != nil {
		t.Fatalf("post-failover snapshot invalid: %v", err)
	}
	assertCommitted(t, p)

	// Drop to one alive replica: no quorum, no progress, until revival.
	p.Kill(1)
	if _, err := p.Apply(gen.next(t, 0.3)); err == nil {
		t.Fatal("apply committed with 1/3 replicas alive")
	}
	if _, _, err := p.Failover(); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("failover with 1/3 alive: err=%v, want ErrNoQuorum", err)
	}
	p.Revive(0)
	if leader, _, err = p.Failover(); err != nil {
		t.Fatalf("failover after revival: %v", err)
	}
	if leader != 2 {
		// Replica 0 missed the epochs committed while it was dead; the
		// election restriction must have rejected it.
		t.Fatalf("failover elected stale replica %d, want 2", leader)
	}
	// The plane keeps working; every epoch ever published stays committed.
	for i := 0; i < 3; i++ {
		if _, err := p.Apply(gen.next(t, 0.3)); err != nil {
			t.Fatalf("post-recovery event %d: %v", i, err)
		}
		assertCommitted(t, p)
	}
	for e := uint64(0); e <= p.Epoch(); e++ {
		if terms := p.Cluster().CommittedTermsAt(e); len(terms) != 1 {
			t.Fatalf("epoch %d committed under terms %v, want exactly one", e, terms)
		}
	}
	m := p.Metrics()
	if m.Deposals == 0 || m.Elections < 3 {
		t.Fatalf("metrics missed the leadership churn: %+v", m)
	}
}

// chanBetween returns the directed channel u -> v (NoChannel when none).
func chanBetween(net *graph.Network, u, v graph.NodeID) graph.ChannelID {
	for _, c := range net.Out(u) {
		if net.Channel(c).To == v {
			return c
		}
	}
	return graph.NoChannel
}

// TestSeamVetoMutation is the mutation test of the coordinator's seam
// certification: a tampered repair result carrying a seam-escalated,
// cycle-forming dependency triangle must be vetoed with a concrete,
// independently validated oracle witness, and the plane must recover by
// publishing a certified full recompute instead.
//
// The tamper re-routes three same-layer destinations around a directed
// switch triangle s0 -> s1 -> s2 -> s0 so that each destination's walk
// stays loop-free (the oracle's route walk passes) while their combined
// channel dependencies close a cycle — exactly the class of fault the
// route-level checks cannot see and only the CDG cycle search refutes.
func TestSeamVetoMutation(t *testing.T) {
	tp := topology.Dragonfly(4, 2, 2, 9)
	// One virtual layer puts every destination in the same CDG, so the
	// dependency triangle below is guaranteed to share a layer.
	p, err := New(tp, Options{
		Shards:   4,
		Replicas: 3,
		Fabric:   fabric.Options{MaxVCs: 1, Seed: 1, Verify: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	net := p.View().Net

	// The event: fail a seam (inter-region) link that keeps the fabric
	// connected, forcing coordinator escalation.
	var seamLink graph.ChannelID = graph.NoChannel
	probe := net.Clone()
	for c := 0; c < net.NumChannels(); c++ {
		id := graph.ChannelID(c)
		ch := net.Channel(id)
		if !p.Regions().Seam(id) || ch.Failed || !net.IsSwitch(ch.From) || !net.IsSwitch(ch.To) {
			continue
		}
		probe.SetChannelFailed(id, true)
		ok := graph.Connected(probe)
		probe.SetChannelFailed(id, false)
		if ok {
			seamLink = id
			break
		}
	}
	if seamLink == graph.NoChannel {
		t.Fatal("no connectivity-preserving seam link found")
	}

	// The dependency triangle: three switches of one Dragonfly group
	// (locally all-to-all) away from the failed link, with one terminal
	// each.
	failFrom := net.Channel(seamLink).From
	var ring [3]graph.NodeID
	var rdst [3]graph.NodeID
	found := false
	groups := dragonflyGroups(net, net.Switches())
	switches := net.Switches()
	byGroup := make(map[int][]graph.NodeID)
	for i, sw := range switches {
		byGroup[groups[i]] = append(byGroup[groups[i]], sw)
	}
	avoid := groups[0] // group index of the failed link's origin
	for i, sw := range switches {
		if sw == failFrom {
			avoid = groups[i]
		}
	}
	terminalOf := func(sw graph.NodeID) graph.NodeID {
		for _, c := range net.Out(sw) {
			if net.IsTerminal(net.Channel(c).To) {
				return net.Channel(c).To
			}
		}
		return graph.NoNode
	}
	for g, sws := range byGroup {
		if g == avoid || len(sws) < 3 {
			continue
		}
		ring = [3]graph.NodeID{sws[0], sws[1], sws[2]}
		// rdst[i] is served over the triangle edge leaving ring[i]: the
		// destination attached to ring[(i+2)%3].
		ok := true
		for i := range ring {
			if rdst[i] = terminalOf(ring[(i+2)%3]); rdst[i] == graph.NoNode {
				ok = false
			}
		}
		if ok {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no tamper triangle found")
	}
	edge := func(i int) graph.ChannelID {
		c := chanBetween(net, ring[i], ring[(i+1)%3])
		if c == graph.NoChannel {
			t.Fatalf("no channel %d -> %d in a Dragonfly group", ring[i], ring[(i+1)%3])
		}
		return c
	}
	e01, e12, e20 := edge(0), edge(1), edge(2)

	p.TamperForTest(func(n *graph.Network, res *routing.Result) {
		// Each destination takes two triangle hops and exits to its
		// terminal: loop-free walks, cyclic dependencies.
		set := func(sw, dst graph.NodeID, c graph.ChannelID) {
			res.Table.Set(sw, dst, c)
		}
		set(ring[0], rdst[0], e01) // dst at ring[2]: s0 -> s1 -> s2 -> t
		set(ring[1], rdst[0], e12)
		set(ring[1], rdst[1], e12) // dst at ring[0]: s1 -> s2 -> s0 -> t
		set(ring[2], rdst[1], e20)
		set(ring[2], rdst[2], e20) // dst at ring[1]: s2 -> s0 -> s1 -> t
		set(ring[0], rdst[2], e01)
		set(ring[2], rdst[0], chanBetween(n, ring[2], rdst[0]))
		set(ring[0], rdst[1], chanBetween(n, ring[0], rdst[1]))
		set(ring[1], rdst[2], chanBetween(n, ring[1], rdst[2]))
	})

	rep, err := p.Apply(fabric.Event{Kind: fabric.LinkFail, Link: seamLink})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !rep.SeamCertified {
		t.Fatal("seam event was not escalated to the coordinator")
	}
	if rep.SeamVeto == nil {
		t.Fatal("cycle-forming tamper was not vetoed")
	}
	var ce *oracle.CycleError
	if !errors.As(rep.SeamVeto, &ce) {
		t.Fatalf("veto is %T (%v), want a dependency-cycle witness", rep.SeamVeto, rep.SeamVeto)
	}
	snap := p.View()
	if err := oracle.ValidateWitness(snap.Net, ce.Witness); err != nil {
		t.Fatalf("veto witness does not validate: %v", err)
	}
	onTriangle := false
	for _, d := range ce.Witness {
		if d.Channel == e01 || d.Channel == e12 || d.Channel == e20 {
			onTriangle = true
		}
	}
	if !onTriangle {
		t.Fatalf("witness %v does not touch the injected triangle", ce.Witness)
	}
	if !rep.FullRecompute {
		t.Fatal("veto recovery did not run a full recompute")
	}

	// The published epoch is the recovery, certified end to end.
	if _, err := oracle.Certify(snap.Net, snap.Result, oracle.Options{}); err != nil {
		t.Fatalf("published epoch refuted by the oracle: %v", err)
	}
	if _, err := verify.Check(snap.Net, snap.Result, nil); err != nil {
		t.Fatalf("published epoch invalid: %v", err)
	}
	assertCommitted(t, p)
	if m := p.Metrics(); m.SeamVetoes != 1 {
		t.Fatalf("SeamVetoes = %d, want 1", m.SeamVetoes)
	}

	// Clear the tamper: the plane keeps repairing cleanly.
	p.TamperForTest(nil)
	gen := newChurnGen(tp, 3)
	gen.st.Mutate(fabric.Event{Kind: fabric.LinkFail, Link: seamLink})
	rep2, err := p.Apply(gen.next(t, 0.0))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SeamVeto != nil {
		t.Fatalf("clean repair vetoed: %v", rep2.SeamVeto)
	}
	assertCommitted(t, p)
}
