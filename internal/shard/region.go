// Package shard is the sharded, replicated control plane: a fabric
// partitioned into topology-aware regions, each owned by a controller
// shard that runs local incremental repairs, with a coordinator that
// certifies cross-region dependency changes on the seam (the old+new CDG
// union, UPR-style) and a replicated epoch log that keeps repair alive
// across controller crashes and network partitions.
//
// The plane reuses the fabric package's State (topology bookkeeping) and
// Runner (repair computation) verbatim — sharding only changes WHERE
// per-layer repair jobs execute and WHO may publish the result, never
// what is computed. That is the digest-equality contract: on identical
// churn traces the sharded plane publishes bit-identical forwarding
// tables to a monolithic fabric.Manager.
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/topology"
)

// Regions is a partition of a fabric into controller-shard ownership
// regions. Every node (switch and terminal) belongs to exactly one
// region; channels whose endpoints live in different regions are seam
// channels — dependency changes over them are escalated to the
// coordinator instead of being repaired region-locally.
type Regions struct {
	// N is the number of regions.
	N int
	// Of maps every node to its region.
	Of []int
	// seam marks the directed channels crossing a region boundary;
	// seamList is the same set as a list, for per-destination scans.
	seam     []bool
	seamList []graph.ChannelID
	// Sizes counts switches per region.
	Sizes []int
}

// Partition splits tp into n topology-aware regions: Dragonfly groups
// (parsed from the g<idx>-s<idx> switch naming) are kept whole, torus
// grids are cut into contiguous slabs along their largest dimension,
// leveled trees are cut into leaf pods (upper levels spread round-robin),
// and any other topology falls back to contiguous switch-ID blocks —
// which is also group-major on Dragonflies, pod-major on generated fat
// trees and slab-major on generated tori, so the fallback degrades
// gracefully. Terminals join their switch's region. Partitioning is a
// pure function of the pristine topology: churn never moves a node
// between regions.
func Partition(tp *topology.Topology, n int) *Regions {
	net := tp.Net
	if n < 1 {
		n = 1
	}
	if sw := net.NumSwitches(); n > sw {
		n = sw
	}
	r := &Regions{N: n, Of: make([]int, net.NumNodes()), Sizes: make([]int, n)}
	switches := net.Switches()
	assign := func(sw graph.NodeID, region int) {
		r.Of[sw] = region
		r.Sizes[region]++
	}
	groups := dragonflyGroups(net, switches)
	switch {
	case groups != nil:
		// Whole groups per region, contiguous group ranges: region =
		// group * n / numGroups keeps group-major locality and balances
		// within one group of each other.
		numGroups := 0
		for _, g := range groups {
			if g >= numGroups {
				numGroups = g + 1
			}
		}
		for i, sw := range switches {
			assign(sw, groups[i]*n/numGroups)
		}
	case tp.Torus != nil:
		// Slabs along the largest grid dimension.
		dims := tp.Torus.Dims
		axis := 0
		for a := 1; a < 3; a++ {
			if dims[a] > dims[axis] {
				axis = a
			}
		}
		for _, sw := range switches {
			c, ok := tp.Torus.Coord[sw]
			if !ok {
				assign(sw, 0)
				continue
			}
			assign(sw, c[axis]*n/dims[axis])
		}
	case tp.Tree != nil:
		// Leaf pods: level-0 switches in contiguous blocks; upper levels
		// round-robin (they are shared spine capacity, not pod members).
		var leaves, upper []graph.NodeID
		for _, sw := range switches {
			if tp.Tree.Level[sw] == 0 {
				leaves = append(leaves, sw)
			} else {
				upper = append(upper, sw)
			}
		}
		for i, sw := range leaves {
			assign(sw, i*n/len(leaves))
		}
		for i, sw := range upper {
			assign(sw, i%n)
		}
	default:
		for i, sw := range switches {
			assign(sw, i*n/len(switches))
		}
	}
	for _, t := range net.Terminals() {
		r.Of[t] = r.Of[attachedSwitch(net, t)]
	}
	r.seam = make([]bool, net.NumChannels())
	for c := 0; c < net.NumChannels(); c++ {
		ch := net.Channel(graph.ChannelID(c))
		if net.IsSwitch(ch.From) && net.IsSwitch(ch.To) && r.Of[ch.From] != r.Of[ch.To] {
			r.seam[c] = true
			r.seamList = append(r.seamList, graph.ChannelID(c))
		}
	}
	return r
}

// SeamChannels returns the directed seam channels (shared slice: do not
// mutate).
func (r *Regions) SeamChannels() []graph.ChannelID { return r.seamList }

// Seam reports whether c crosses a region boundary.
func (r *Regions) Seam(c graph.ChannelID) bool { return r.seam[c] }

// SeamCount returns the number of directed seam channels.
func (r *Regions) SeamCount() int {
	n := 0
	for _, s := range r.seam {
		if s {
			n++
		}
	}
	return n
}

// HomeRegion returns the single region containing every changed channel
// and every node of dests, or -1 when they span regions (a seam-crossing
// dependency change that must escalate to the coordinator).
func (r *Regions) HomeRegion(changed []graph.ChannelID, dests []graph.NodeID, net *graph.Network) int {
	home := -1
	place := func(region int) bool {
		if home == -1 {
			home = region
		}
		return home == region
	}
	for _, c := range changed {
		if r.seam[c] {
			return -1
		}
		if !place(r.Of[net.Channel(c).From]) {
			return -1
		}
	}
	for _, d := range dests {
		if !place(r.Of[d]) {
			return -1
		}
	}
	return home
}

// String summarizes the partition.
func (r *Regions) String() string {
	return fmt.Sprintf("%d regions %v, %d seam channels", r.N, r.Sizes, r.SeamCount())
}

// dragonflyGroups parses per-switch Dragonfly group indexes from the
// g<idx>-s<idx> naming convention of topology.Dragonfly. Returns nil when
// any switch does not follow it.
func dragonflyGroups(net *graph.Network, switches []graph.NodeID) []int {
	groups := make([]int, len(switches))
	for i, sw := range switches {
		name := net.Node(sw).Name
		if !strings.HasPrefix(name, "g") {
			return nil
		}
		dash := strings.IndexByte(name, '-')
		if dash < 2 || dash+2 > len(name) || name[dash+1] != 's' {
			return nil
		}
		g, err := strconv.Atoi(name[1:dash])
		if err != nil || g < 0 {
			return nil
		}
		groups[i] = g
	}
	return groups
}

// attachedSwitch returns the switch a terminal connects to, tolerating
// failed links (region membership must survive churn).
func attachedSwitch(net *graph.Network, t graph.NodeID) graph.NodeID {
	if out := net.Out(t); len(out) > 0 {
		return net.Channel(out[0]).To
	}
	for c := 0; c < net.NumChannels(); c++ {
		ch := net.Channel(graph.ChannelID(c))
		if ch.From == t {
			return ch.To
		}
	}
	return t
}
