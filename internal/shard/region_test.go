package shard

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

// TestPartitionDragonflyGroups: on a Dragonfly the partition must keep
// every group whole, so the seam is exactly a subset of the global
// links — no intra-group (local) channel may cross a region boundary.
func TestPartitionDragonflyGroups(t *testing.T) {
	tp := topology.Dragonfly(4, 2, 2, 9) // 9 groups of 4 switches
	for _, n := range []int{2, 3, 4, 9} {
		r := Partition(tp, n)
		if r.N != n {
			t.Fatalf("n=%d: got %d regions", n, r.N)
		}
		group := func(sw graph.NodeID) string {
			name := tp.Net.Node(sw).Name
			return name[:strings.IndexByte(name, '-')]
		}
		byGroup := make(map[string]int)
		total := 0
		for _, sw := range tp.Net.Switches() {
			g := group(sw)
			if reg, seen := byGroup[g]; seen && reg != r.Of[sw] {
				t.Fatalf("n=%d: group %s split across regions %d and %d", n, g, reg, r.Of[sw])
			}
			byGroup[g] = r.Of[sw]
			total++
		}
		sum := 0
		for reg, size := range r.Sizes {
			if size == 0 {
				t.Fatalf("n=%d: region %d is empty", n, reg)
			}
			sum += size
		}
		if sum != total {
			t.Fatalf("n=%d: region sizes sum to %d, want %d switches", n, sum, total)
		}
		seam := 0
		for c := 0; c < tp.Net.NumChannels(); c++ {
			id := graph.ChannelID(c)
			if !r.Seam(id) {
				continue
			}
			seam++
			ch := tp.Net.Channel(id)
			if group(ch.From) == group(ch.To) {
				t.Fatalf("n=%d: seam channel %d is intra-group (%s)", n, id, group(ch.From))
			}
		}
		if seam == 0 {
			t.Fatalf("n=%d: no seam channels on a multi-region dragonfly", n)
		}
		if seam != r.SeamCount() {
			t.Fatalf("n=%d: counted %d seam channels, SeamCount says %d", n, seam, r.SeamCount())
		}
		// Terminals follow their switch.
		for _, term := range tp.Net.Terminals() {
			sw := attachedSwitch(tp.Net, term)
			if r.Of[term] != r.Of[sw] {
				t.Fatalf("n=%d: terminal %d in region %d, its switch %d in region %d",
					n, term, r.Of[term], sw, r.Of[sw])
			}
		}
	}
}

// TestPartitionTorusSlabs: a torus is cut into contiguous slabs along
// its largest dimension — region must be monotone in that coordinate.
func TestPartitionTorusSlabs(t *testing.T) {
	tp := topology.Torus3D(6, 3, 2, 1, 1)
	r := Partition(tp, 3)
	for _, sw := range tp.Net.Switches() {
		c := tp.Torus.Coord[sw]
		want := c[0] * 3 / 6 // x is the largest dimension
		if r.Of[sw] != want {
			t.Fatalf("switch %d at x=%d: region %d, want slab %d", sw, c[0], r.Of[sw], want)
		}
	}
}

// TestPartitionTreePods: level-0 switches form contiguous pods; every
// region gets leaves, and spines are spread over all regions.
func TestPartitionTreePods(t *testing.T) {
	tp := topology.KAryNTree(4, 2, 1)
	const n = 4
	r := Partition(tp, n)
	lastPod := -1
	leafRegions := make(map[int]bool)
	spineRegions := make(map[int]bool)
	for _, sw := range tp.Net.Switches() {
		if tp.Tree.Level[sw] == 0 {
			if r.Of[sw] < lastPod {
				t.Fatalf("leaf %d: region %d after region %d — pods not contiguous", sw, r.Of[sw], lastPod)
			}
			lastPod = r.Of[sw]
			leafRegions[r.Of[sw]] = true
		} else {
			spineRegions[r.Of[sw]] = true
		}
	}
	if len(leafRegions) != n {
		t.Fatalf("leaves cover %d of %d regions", len(leafRegions), n)
	}
	if len(spineRegions) < 2 {
		t.Fatalf("spines concentrated in %d region(s)", len(spineRegions))
	}
}

// TestPartitionFallbackAndClamp: an unstructured topology falls back to
// contiguous switch-ID blocks, and n is clamped to the switch count.
func TestPartitionFallbackAndClamp(t *testing.T) {
	tp := topology.RandomTopology(rand.New(rand.NewSource(5)), 10, 30, 1)
	r := Partition(tp, 64)
	if r.N != 10 {
		t.Fatalf("regions = %d, want clamp to 10 switches", r.N)
	}
	r = Partition(tp, 3)
	last := 0
	for _, sw := range tp.Net.Switches() {
		if r.Of[sw] < last {
			t.Fatalf("fallback blocks not contiguous: switch %d region %d after %d", sw, r.Of[sw], last)
		}
		last = r.Of[sw]
	}
}

// TestHomeRegion: single-region job sets resolve to that region; any
// seam crossing or region-spanning destination set escalates (-1).
func TestHomeRegion(t *testing.T) {
	tp := topology.Dragonfly(4, 2, 2, 9)
	r := Partition(tp, 4)
	net := tp.Net

	// All destinations of one region: home is that region.
	var reg0 []graph.NodeID
	for _, term := range net.Terminals() {
		if r.Of[term] == 0 {
			reg0 = append(reg0, term)
		}
	}
	if len(reg0) == 0 {
		t.Fatal("region 0 has no terminals")
	}
	if home := r.HomeRegion(nil, reg0, net); home != 0 {
		t.Fatalf("home of region-0 terminals = %d, want 0", home)
	}

	// Destinations spanning regions escalate.
	var span []graph.NodeID
	for _, term := range net.Terminals() {
		if r.Of[term] != 0 {
			span = append(span, reg0[0], term)
			break
		}
	}
	if home := r.HomeRegion(nil, span, net); home != -1 {
		t.Fatalf("home of cross-region destinations = %d, want -1", home)
	}

	// A seam channel escalates regardless of destinations.
	for c := 0; c < net.NumChannels(); c++ {
		if r.Seam(graph.ChannelID(c)) {
			if home := r.HomeRegion([]graph.ChannelID{graph.ChannelID(c)}, nil, net); home != -1 {
				t.Fatalf("home of seam channel %d = %d, want -1", c, home)
			}
			break
		}
	}

	// A non-seam channel resolves to its endpoints' region.
	for c := 0; c < net.NumChannels(); c++ {
		id := graph.ChannelID(c)
		ch := net.Channel(id)
		if r.Seam(id) || !net.IsSwitch(ch.From) || !net.IsSwitch(ch.To) {
			continue
		}
		if home := r.HomeRegion([]graph.ChannelID{id}, nil, net); home != r.Of[ch.From] {
			t.Fatalf("home of local channel %d = %d, want %d", id, home, r.Of[ch.From])
		}
		break
	}
}
