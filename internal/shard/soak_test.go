package shard

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/graph"
	"repro/internal/routing/verify"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestSoakShardFailover is the failure-injection soak: a 4-shard,
// 3-replica plane on a Dragonfly absorbs continuous churn while leaders
// are killed (between events and mid-apply), followers crashed, and the
// leader partitioned away — for a bounded wall-clock budget. Invariants
// held throughout: epochs advance by exactly one per successful apply,
// every published epoch verifies (connectivity + deadlock freedom) and
// is digest-committed on a quorum, at most one term ever commits any
// epoch, and periodic flit-level simulation conserves flits (injected +
// replicated == delivered + in-flight) without deadlocking.
//
// Gated behind NUE_SOAK=1 (budget in seconds via NUE_SOAK_SECONDS,
// default 45). Run it with -race.
func TestSoakShardFailover(t *testing.T) {
	if os.Getenv("NUE_SOAK") == "" {
		t.Skip("set NUE_SOAK=1 to run the failure-injection soak")
	}
	budget := 45 * time.Second
	if s := os.Getenv("NUE_SOAK_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs < 1 {
			t.Fatalf("NUE_SOAK_SECONDS=%q: %v", s, err)
		}
		budget = time.Duration(secs) * time.Second
	}

	tp := topology.Dragonfly(4, 2, 2, 9)
	p, err := New(tp, Options{
		Shards:   4,
		Replicas: 3,
		Fabric:   fabric.Options{MaxVCs: 4, Seed: 1, Verify: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := newChurnGen(tp, 42)
	rng := rand.New(rand.NewSource(4242))
	quorum := p.Cluster().Size()/2 + 1

	aliveCount := func() int {
		n := 0
		for id := 0; id < p.Cluster().Size(); id++ {
			if p.Cluster().Alive(id) {
				n++
			}
		}
		return n
	}
	recover := func(step int) {
		p.SetBeforeCommit(nil)
		p.Cluster().Heal()
		for id := 0; id < p.Cluster().Size(); id++ {
			p.Revive(id)
		}
		if _, _, err := p.Failover(); err != nil {
			t.Fatalf("step %d: failover after full revival: %v", step, err)
		}
	}

	deadline := time.Now().Add(budget)
	epoch := p.Epoch()
	step, faults, failovers := 0, 0, 0
	for time.Now().Before(deadline) {
		step++
		ev := gen.next(t, 0.35)

		injected := -1
		if step%5 == 0 {
			leader, _ := p.Leader()
			injected = rng.Intn(4)
			switch injected {
			case 0: // kill the leader between events
				p.Kill(leader)
			case 1: // kill the leader mid-apply, after repair, before commit
				armed := true
				p.SetBeforeCommit(func() {
					if armed {
						armed = false
						p.Kill(leader)
					}
				})
			case 2: // crash a follower, but never break quorum ourselves
				follower := (leader + 1 + rng.Intn(p.Cluster().Size()-1)) % p.Cluster().Size()
				if aliveCount()-1 >= quorum && p.Cluster().Alive(follower) {
					p.Kill(follower)
				}
			case 3: // partition the leader into a minority
				p.Cluster().Partition([]int{leader})
			}
			faults++
		}

		rep, err := p.Apply(ev)
		if injected == 1 {
			p.SetBeforeCommit(nil)
		}
		if err != nil {
			// The injected fault cost this term its quorum: nothing may have
			// published; heal, fail over, and re-propose the SAME event.
			if got := p.Epoch(); got != epoch {
				t.Fatalf("step %d: failed apply moved the epoch %d -> %d", step, epoch, got)
			}
			recover(step)
			failovers++
			if rep, err = p.Apply(ev); err != nil {
				t.Fatalf("step %d: re-proposed event after failover: %v", step, err)
			}
		}
		if !rep.NoOp {
			if rep.Epoch != epoch+1 {
				t.Fatalf("step %d: epoch jumped %d -> %d", step, epoch, rep.Epoch)
			}
			epoch = rep.Epoch
		}
		if rep.SeamVeto != nil {
			t.Fatalf("step %d: legitimate repair vetoed: %v", step, rep.SeamVeto)
		}

		if step%10 == 0 {
			snap := p.View()
			if _, err := verify.Check(snap.Net, snap.Result, nil); err != nil {
				t.Fatalf("step %d: published snapshot invalid: %v", step, err)
			}
			assertCommitted(t, p)

			// Flit-level conservation on the live tables.
			terms := snap.Net.Terminals()
			var msgs []sim.Message
			for tries := 0; len(msgs) < 40 && tries < 400; tries++ {
				src := terms[rng.Intn(len(terms))]
				dst := terms[rng.Intn(len(terms))]
				if src == dst || snap.Result.Table.Next(src, dst) == graph.NoChannel {
					continue
				}
				msgs = append(msgs, sim.Message{Src: src, Dst: dst})
			}
			cfg := sim.DefaultConfig()
			cfg.MaxCycles = 500_000
			r, err := sim.Run(snap.Net, snap.Result, msgs, cfg)
			if err != nil {
				t.Fatalf("step %d: sim: %v", step, err)
			}
			if r.Deadlocked {
				t.Fatalf("step %d: simulation deadlocked on published tables", step)
			}
			if r.InjectedFlits+r.ReplicatedFlits != r.DeliveredFlits+r.InFlightFlits {
				t.Fatalf("step %d: flit conservation violated: injected %d + replicated %d != delivered %d + in-flight %d",
					step, r.InjectedFlits, r.ReplicatedFlits, r.DeliveredFlits, r.InFlightFlits)
			}
		}
	}

	// Epoch-monotonicity and single-term commitment over the whole run.
	for e := uint64(0); e <= epoch; e++ {
		entry, ok := p.Cluster().CommittedAt(e)
		if !ok {
			t.Fatalf("epoch %d has no commit quorum at soak end", e)
		}
		if entry.Epoch != e {
			t.Fatalf("epoch %d committed under index %d", e, entry.Epoch)
		}
		if terms := p.Cluster().CommittedTermsAt(e); len(terms) != 1 {
			t.Fatalf("epoch %d committed under terms %v, want exactly one", e, terms)
		}
	}
	m := p.Metrics()
	t.Logf("soak: %d steps, %d epochs, %d faults injected, %d failovers, %d local + %d seam jobs, metrics %+v",
		step, epoch, faults, failovers, m.LocalJobs, m.SeamJobs, m)
	if failovers == 0 {
		t.Error("soak never exercised a failover")
	}
}
