package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// cyclicRingFixture builds a 4-switch ring (one terminal each) routed
// strictly clockwise with a single virtual channel — the textbook cyclic
// channel dependency (Dally & Seitz) that Nue exists to avoid. Every
// packet that is not at its destination switch forwards to the next ring
// switch in the same direction, so the four ring channels wait on each
// other in a cycle.
func cyclicRingFixture(t *testing.T) (*graph.Network, *routing.Result, []graph.NodeID) {
	t.Helper()
	tp := topology.Ring(4, 1)
	net := tp.Net
	switches := net.Switches()
	terms := net.Terminals()

	// Orient the ring: from each switch, the clockwise hop is the switch
	// neighbor we have not come from.
	next := make(map[graph.NodeID]graph.ChannelID)
	prev := graph.NoNode
	cur := switches[0]
	for i := 0; i < len(switches); i++ {
		for _, c := range net.Out(cur) {
			to := net.Channel(c).To
			if net.IsSwitch(to) && to != prev {
				next[cur] = c
				prev, cur = cur, to
				break
			}
		}
	}
	if len(next) != len(switches) {
		t.Fatalf("ring orientation found %d hops, want %d", len(next), len(switches))
	}

	table := routing.NewTable(net, terms)
	for _, sw := range switches {
		for _, d := range terms {
			if net.TerminalSwitch(d) == sw {
				// Ejection: the switch's channel to the terminal itself.
				for _, c := range net.Out(sw) {
					if net.Channel(c).To == d {
						table.Set(sw, d, c)
					}
				}
				continue
			}
			table.Set(sw, d, next[sw])
		}
	}
	res := &routing.Result{Algorithm: "cyclic-ring", Table: table, VCs: 1}
	return net, res, terms
}

// allToAll builds src->dst messages between every ordered terminal pair.
func allToAll(terms []graph.NodeID) []Message {
	var msgs []Message
	for _, s := range terms {
		for _, d := range terms {
			if s != d {
				msgs = append(msgs, Message{Src: s, Dst: d})
			}
		}
	}
	return msgs
}

// TestDeadlockOracle is the adversarial proof that the deadlock detector
// is real: deliberately cyclic routing on a 4-ring must wedge, the
// detector must fire (not the timeout), and the sim_deadlock_detected
// counter must increment. Stubbing the detector out (making
// detectDeadlock return false) fails this test on all three assertions.
func TestDeadlockOracle(t *testing.T) {
	net, res, terms := cyclicRingFixture(t)
	reg := telemetry.New()
	cfg := Config{PacketFlits: 8, MessageFlits: 64, BufferPackets: 1,
		Telemetry: reg.Sim()}
	r, err := Run(net, res, allToAll(terms), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deadlocked {
		t.Fatal("cyclic ring routing did not deadlock — the oracle found nothing to detect")
	}
	if r.TimedOut {
		t.Error("deadlock must be detected by the event-queue drain, not a timeout")
	}
	if r.DeliveredFlits >= r.InjectedFlits {
		t.Errorf("wedged run delivered all injected flits (%d)", r.DeliveredFlits)
	}
	if r.DeadlockSweeps == 0 {
		t.Error("detector never swept the network")
	}
	s := reg.Snapshot()
	if got := s.Counters["sim_deadlock_detected"]; got != 1 {
		t.Errorf("sim_deadlock_detected = %d, want 1", got)
	}
	if s.Counters["sim_runs_total"] != 1 {
		t.Errorf("sim_runs_total = %d, want 1", s.Counters["sim_runs_total"])
	}
	// The wedge strands traffic: the independent sweep must see it.
	if s.Gauges["sim_flits_in_flight"] == 0 {
		t.Error("deadlocked run reports no in-flight flits")
	}
	var found bool
	for _, e := range s.Events {
		if e.Kind == "sim_deadlock" {
			found = true
		}
	}
	if !found {
		t.Error("no sim_deadlock event in the ring")
	}
}

// TestNueRingDoesNotDeadlock is the control for the oracle: identical
// topology, traffic and simulator configuration, but Nue routing with the
// same single virtual channel. Nue's escape-path construction breaks the
// ring cycle, so the exchange completes.
func TestNueRingDoesNotDeadlock(t *testing.T) {
	tp := topology.Ring(4, 1)
	terms := tp.Net.Terminals()
	res, err := core.New(core.DefaultOptions()).Route(tp.Net, terms, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cfg := Config{PacketFlits: 8, MessageFlits: 64, BufferPackets: 1,
		Telemetry: reg.Sim()}
	r, err := Run(tp.Net, res, allToAll(terms), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.TimedOut {
		t.Fatalf("nue-routed ring wedged: %+v", r)
	}
	if r.DeliveredMessages != r.TotalMessages {
		t.Errorf("delivered %d/%d messages", r.DeliveredMessages, r.TotalMessages)
	}
	if got := reg.Snapshot().Counters["sim_deadlock_detected"]; got != 0 {
		t.Errorf("sim_deadlock_detected = %d, want 0", got)
	}
}

// TestFlitConservation pins the invariant the telemetry layer is built
// on: injected == delivered + in-flight, where in-flight is measured by
// an independent sweep of the buffers and event queue (never derived from
// the other two counters). Checked on a completed run, a deadlocked run
// and a timed-out run.
func TestFlitConservation(t *testing.T) {
	check := func(t *testing.T, r Result) {
		t.Helper()
		if r.InjectedFlits != r.DeliveredFlits+r.InFlightFlits {
			t.Errorf("injected %d != delivered %d + in-flight %d",
				r.InjectedFlits, r.DeliveredFlits, r.InFlightFlits)
		}
	}

	t.Run("completed", func(t *testing.T) {
		tp := topology.Torus3D(3, 3, 2, 1, 1)
		terms := tp.Net.Terminals()
		res, err := core.New(core.DefaultOptions()).Route(tp.Net, terms, 2)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(tp.Net, res, allToAll(terms), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		check(t, r)
		if r.InFlightFlits != 0 {
			t.Errorf("completed run left %d flits in flight", r.InFlightFlits)
		}
		if r.InjectedFlits == 0 {
			t.Error("no flits injected")
		}
	})

	t.Run("deadlocked", func(t *testing.T) {
		net, res, terms := cyclicRingFixture(t)
		cfg := Config{PacketFlits: 8, MessageFlits: 64, BufferPackets: 1}
		r, err := Run(net, res, allToAll(terms), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Deadlocked {
			t.Fatal("fixture did not deadlock")
		}
		check(t, r)
		if r.InFlightFlits == 0 {
			t.Error("deadlocked run reports no in-flight flits")
		}
	})

	t.Run("timed-out", func(t *testing.T) {
		tp := topology.Torus3D(3, 3, 2, 1, 1)
		terms := tp.Net.Terminals()
		res, err := core.New(core.DefaultOptions()).Route(tp.Net, terms, 2)
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.New()
		cfg := DefaultConfig()
		cfg.MaxCycles = 40 // far too few cycles for the full exchange
		cfg.Telemetry = reg.Sim()
		r, err := Run(tp.Net, res, allToAll(terms), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !r.TimedOut {
			t.Skip("exchange finished within the cycle cap")
		}
		check(t, r)
		if got := reg.Snapshot().Counters["sim_timeouts_total"]; got != 1 {
			t.Errorf("sim_timeouts_total = %d, want 1", got)
		}
	})
}

// TestStallAndQueueTelemetry: a congested run must report stall cycles
// and a queue high-water mark, and the telemetry counters must equal the
// Result fields (the bundle is fed from the same accounting).
func TestStallAndQueueTelemetry(t *testing.T) {
	tp := topology.Ring(6, 2)
	terms := tp.Net.Terminals()
	res, err := core.New(core.DefaultOptions()).Route(tp.Net, terms, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	cfg := Config{PacketFlits: 8, MessageFlits: 64, BufferPackets: 1,
		Telemetry: reg.Sim()}
	r, err := Run(tp.Net, res, allToAll(terms), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked {
		t.Fatal("nue-routed ring deadlocked")
	}
	if r.StallCycles == 0 {
		t.Error("all-to-all over a 6-ring reported zero stall cycles")
	}
	s := reg.Snapshot()
	if got := s.Counters["sim_stall_cycles_total"]; got != r.StallCycles {
		t.Errorf("sim_stall_cycles_total = %d, want %d", got, r.StallCycles)
	}
	if got := s.Counters["sim_flits_injected_total"]; got != r.InjectedFlits {
		t.Errorf("sim_flits_injected_total = %d, want %d", got, r.InjectedFlits)
	}
	if got := s.Counters["sim_flits_delivered_total"]; got != r.DeliveredFlits {
		t.Errorf("sim_flits_delivered_total = %d, want %d", got, r.DeliveredFlits)
	}
	var hwm int64
	for vl := 0; vl < telemetry.MaxTrackedVCs; vl++ {
		if v := s.Gauges["sim_vc_queue_depth_hwm_vc"+itoa(vl)]; v > hwm {
			hwm = v
		}
	}
	if hwm == 0 {
		t.Error("no queue high-water mark recorded under congestion")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
