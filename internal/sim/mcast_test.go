package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mcast"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// castConservation pins the generalized flit invariant: every flit in
// the network was either injected at a source or minted at a branch
// switch, so injected + replicated == delivered + in-flight.
func castConservation(t *testing.T, r Result) {
	t.Helper()
	if r.InjectedFlits+r.ReplicatedFlits != r.DeliveredFlits+r.InFlightFlits {
		t.Errorf("injected %d + replicated %d != delivered %d + in-flight %d",
			r.InjectedFlits, r.ReplicatedFlits, r.DeliveredFlits, r.InFlightFlits)
	}
}

// TestCastBroadcastDelivers: a Nue-routed broadcast over mcast-built
// trees must reach every receiver, replicate flits at branch switches
// (not inject one unicast copy per member), and keep the conservation
// invariant with zero stranded traffic.
func TestCastBroadcastDelivers(t *testing.T) {
	tp := topology.Torus3D(3, 3, 1, 1, 1)
	net := tp.Net
	terms := net.Terminals()
	res, err := core.New(core.DefaultOptions()).Route(net, terms, 2)
	if err != nil {
		t.Fatal(err)
	}
	groups := []mcast.Group{
		{ID: 1, Members: terms},                  // broadcast
		{ID: 2, Members: terms[:len(terms)/2+1]}, // partial group
	}
	cast, _, err := mcast.Build(net, res, groups, mcast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Cast = cast

	reg := telemetry.New()
	cfg := Config{PacketFlits: 8, MessageFlits: 64, BufferPackets: 2,
		Telemetry: reg.Sim()}
	msgs := []Message{{Group: 1}, {Group: 2}, {Group: 1}}
	r, err := Run(net, res, msgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.TimedOut {
		t.Fatalf("cast exchange wedged: %+v", r)
	}
	if r.DeliveredMessages != r.TotalMessages || r.TotalMessages != len(msgs) {
		t.Errorf("delivered %d/%d messages, want %d", r.DeliveredMessages, r.TotalMessages, len(msgs))
	}
	castConservation(t, r)
	if r.InFlightFlits != 0 {
		t.Errorf("completed run left %d flits in flight", r.InFlightFlits)
	}
	// A broadcast tree over 9 switches must branch somewhere unless every
	// member fell back to UBM.
	g1 := cast.Group(1)
	if len(g1.Receivers) > 1 && r.ReplicatedFlits == 0 {
		t.Error("tree with multiple receivers replicated no flits")
	}
	// Each receiver (or UBM leg) gets the full message; total payload
	// delivered must be endpoints * MessageFlits.
	var endpoints int64
	for _, m := range msgs {
		g := cast.Group(m.Group)
		endpoints += int64(len(g.Receivers) + len(g.UBM))
	}
	if want := endpoints * int64(cfg.MessageFlits); r.DeliveredFlits != want {
		t.Errorf("delivered %d flits, want %d (%d endpoints x %d flits)",
			r.DeliveredFlits, want, endpoints, cfg.MessageFlits)
	}
	s := reg.Snapshot()
	if got := s.Counters["sim_flits_replicated_total"]; got != r.ReplicatedFlits {
		t.Errorf("sim_flits_replicated_total = %d, want %d", got, r.ReplicatedFlits)
	}
	if got := s.Counters["sim_deadlock_detected"]; got != 0 {
		t.Errorf("sim_deadlock_detected = %d, want 0", got)
	}
}

// cyclicCastFixture builds the multicast analogue of the Dally & Seitz
// ring: a 4-switch ring (one terminal each, one virtual channel) with
// four hand-built cast path-trees rotated clockwise — group i runs
// s_i -> s_{i+1} -> s_{i+2} and ejects to the terminal there. Each tree
// is individually acyclic, but the union of their channel dependencies
// is the full clockwise ring cycle, so concurrent traffic wedges in a
// circular credit wait.
func cyclicCastFixture(t *testing.T) (*graph.Network, *routing.Result, []Message) {
	t.Helper()
	tp := topology.Ring(4, 1)
	net := tp.Net
	switches := net.Switches()
	terms := net.Terminals()

	// Orient the ring clockwise (same walk as cyclicRingFixture).
	order := make([]graph.NodeID, 0, len(switches))
	hop := make(map[graph.NodeID]graph.ChannelID)
	prev := graph.NoNode
	cur := switches[0]
	for i := 0; i < len(switches); i++ {
		order = append(order, cur)
		for _, c := range net.Out(cur) {
			to := net.Channel(c).To
			if net.IsSwitch(to) && to != prev {
				hop[cur] = c
				prev, cur = cur, to
				break
			}
		}
	}
	if len(hop) != len(switches) {
		t.Fatalf("ring orientation found %d hops, want %d", len(hop), len(switches))
	}
	eject := func(sw, term graph.NodeID) graph.ChannelID {
		for _, c := range net.Out(sw) {
			if net.Channel(c).To == term {
				return c
			}
		}
		t.Fatalf("no ejection channel %d -> %d", sw, term)
		return graph.NoChannel
	}
	termAt := func(sw graph.NodeID) graph.NodeID {
		for _, m := range terms {
			if net.TerminalSwitch(m) == sw {
				return m
			}
		}
		t.Fatalf("no terminal at switch %d", sw)
		return graph.NoNode
	}

	cast := routing.NewCastTable()
	msgs := make([]Message, 0, len(order))
	for i := range order {
		s0, s1, s2 := order[i], order[(i+1)%len(order)], order[(i+2)%len(order)]
		src, dst := termAt(s0), termAt(s2)
		g := &routing.CastGroup{
			ID:        i + 1,
			Source:    src,
			Members:   []graph.NodeID{src, dst},
			Receivers: []graph.NodeID{dst},
		}
		g.AddOut(s0, hop[s0])
		g.AddOut(s1, hop[s1])
		g.AddOut(s2, eject(s2, dst))
		cast.Add(g)
		msgs = append(msgs, Message{Group: i + 1})
	}
	res := &routing.Result{Algorithm: "cyclic-cast-ring",
		Table: routing.NewTable(net, terms), VCs: 1, Cast: cast}
	return net, res, msgs
}

// TestCastRingDeadlock is the adversarial proof that mis-built cast
// trees produce real deadlocks in the flit simulator: the rotated
// path-trees of cyclicCastFixture wedge, the event-queue-drain detector
// fires (not the timeout), and conservation still holds on the wedged
// state.
func TestCastRingDeadlock(t *testing.T) {
	net, res, msgs := cyclicCastFixture(t)
	reg := telemetry.New()
	cfg := Config{PacketFlits: 8, MessageFlits: 64, BufferPackets: 1,
		Telemetry: reg.Sim()}
	r, err := Run(net, res, msgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deadlocked {
		t.Fatal("cyclic cast trees did not deadlock — replication bypasses the credit loop")
	}
	if r.TimedOut {
		t.Error("deadlock must be detected by the event-queue drain, not a timeout")
	}
	if r.DeliveredMessages == r.TotalMessages {
		t.Error("wedged run claims every cast message delivered")
	}
	castConservation(t, r)
	if r.InFlightFlits == 0 {
		t.Error("deadlocked run reports no in-flight flits")
	}
	if got := reg.Snapshot().Counters["sim_deadlock_detected"]; got != 1 {
		t.Errorf("sim_deadlock_detected = %d, want 1", got)
	}
}

// TestCastRingNoDeadlockWhenBuilt is the control: the same ring, the
// same group memberships and the same single-VC simulator configuration,
// but with the trees built by mcast.Build inside Nue's acyclic CDG
// (falling back to UBM where a tree cannot be admitted). The exchange
// must complete.
func TestCastRingNoDeadlockWhenBuilt(t *testing.T) {
	tp := topology.Ring(4, 1)
	net := tp.Net
	terms := net.Terminals()
	res, err := core.New(core.DefaultOptions()).Route(net, terms, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same rotated memberships as the adversarial fixture: {t_i, t_{i+2}}.
	groups := make([]mcast.Group, len(terms))
	for i := range terms {
		groups[i] = mcast.Group{ID: i + 1,
			Members: []graph.NodeID{terms[i], terms[(i+2)%len(terms)]}}
	}
	cast, _, err := mcast.Build(net, res, groups, mcast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Cast = cast

	msgs := make([]Message, len(groups))
	for i := range groups {
		msgs[i] = Message{Group: i + 1}
	}
	cfg := Config{PacketFlits: 8, MessageFlits: 64, BufferPackets: 1}
	r, err := Run(net, res, msgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.TimedOut {
		t.Fatalf("mcast-built trees wedged on the ring: %+v", r)
	}
	if r.DeliveredMessages != r.TotalMessages {
		t.Errorf("delivered %d/%d cast messages", r.DeliveredMessages, r.TotalMessages)
	}
	castConservation(t, r)
}

// TestCastUBMFallback: with explicit per-pair paths present (general
// mode), the builder routes every member as a UBM leg; the simulation
// must deliver the full message to each member with zero replication
// (the legs are plain unicast trains).
func TestCastUBMFallback(t *testing.T) {
	tp := topology.Ring(4, 1)
	net := tp.Net
	terms := net.Terminals()
	res, err := core.New(core.DefaultOptions()).Route(net, terms, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups := []mcast.Group{{ID: 1, Members: terms}}
	cast, _, err := mcast.Build(net, res, groups, mcast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := cast.Group(1)
	if len(g.UBM) == 0 {
		// Force the fallback by rebuilding the group as UBM-only: strip
		// the tree and move every receiver to the UBM list.
		ubm := &routing.CastGroup{ID: 1, Source: g.Source, Members: g.Members,
			SL: g.SL, UBM: append(append([]graph.NodeID(nil), g.Receivers...), g.UBM...)}
		cast = routing.NewCastTable()
		cast.Add(ubm)
		g = ubm
	}
	res.Cast = cast

	r, err := Run(net, res, []Message{{Group: 1}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.TimedOut {
		t.Fatalf("UBM fallback wedged: %+v", r)
	}
	if r.DeliveredMessages != 1 {
		t.Errorf("delivered %d messages, want 1", r.DeliveredMessages)
	}
	if r.ReplicatedFlits != 0 {
		t.Errorf("UBM-only group replicated %d flits, want 0", r.ReplicatedFlits)
	}
	want := int64(len(g.UBM)) * int64(DefaultConfig().MessageFlits)
	if r.DeliveredFlits != want {
		t.Errorf("delivered %d flits, want %d (%d UBM legs)", r.DeliveredFlits, want, len(g.UBM))
	}
	castConservation(t, r)
}
