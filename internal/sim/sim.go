// Package sim is a lossless-network simulator in the spirit of the
// OMNeT++ flit-level toolchain the paper evaluates with: input-buffered
// switches, virtual lanes, credit-based flow control, and deterministic
// destination-based forwarding from a routing.Result (including SL2VL
// mappings). Messages are segmented into packets of a few flits each, so
// wormhole-style pipelining emerges at packet granularity; a channel
// transmits one flit per cycle.
//
// The simulator is event-driven: a blocked packet schedules nothing, so a
// deadlock manifests naturally as an empty event queue with undelivered
// packets — the simulator detects and reports real deadlocks rather than
// assuming the routing is safe.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
)

// Config tunes the simulation. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// PacketFlits is the number of flits per packet (a channel occupies
	// one cycle per flit).
	PacketFlits int
	// MessageFlits is the message size in flits; messages are segmented
	// into ceil(MessageFlits/PacketFlits) packets. The paper's 2 KiB
	// messages at 64-byte flits are MessageFlits = 32.
	MessageFlits int
	// BufferPackets is the per-(channel, VL) input buffer capacity in
	// packets.
	BufferPackets int
	// MaxCycles aborts runs that exceed this simulated time (0 = no cap).
	MaxCycles int64
	// PhaseBarrier, when true, injects messages phase by phase: phase p+1
	// starts only after every phase-p message has been delivered
	// (globally synchronized exchange, like a sequence of blocking
	// MPI_Sendrecv rounds).
	PhaseBarrier bool
}

// DefaultConfig returns a laptop-sized configuration: 512-byte messages
// of 8-flit packets. Use PaperConfig for the full 2 KiB messages.
func DefaultConfig() Config {
	return Config{PacketFlits: 8, MessageFlits: 16, BufferPackets: 2}
}

// PaperConfig matches the paper's message size (2 KiB at 64-byte flits).
func PaperConfig() Config {
	return Config{PacketFlits: 8, MessageFlits: 32, BufferPackets: 2}
}

// Message is one transfer between terminals.
type Message struct {
	Src, Dst graph.NodeID
	// Phase groups messages for barrier-synchronized injection (see
	// Config.PhaseBarrier); 0-based, ignored without barriers.
	Phase int
}

// Result summarizes a simulation run.
type Result struct {
	// Cycles is the makespan (time of last delivery, or time of deadlock
	// detection).
	Cycles int64
	// DeliveredFlits counts payload flits that reached their destination.
	DeliveredFlits int64
	// DeliveredMessages counts fully delivered messages.
	DeliveredMessages int
	// TotalMessages is the offered load.
	TotalMessages int
	// Deadlocked is true when the network wedged: undelivered packets
	// remain but no progress is possible.
	Deadlocked bool
	// TimedOut is true when MaxCycles was exceeded.
	TimedOut bool
	// FlitsPerCycle is aggregate delivered throughput.
	FlitsPerCycle float64
	// AvgMsgLatency and MaxMsgLatency measure cycles from a message's
	// first flit entering the network to its tail flit delivery.
	AvgMsgLatency, MaxMsgLatency float64
	// AvgLinkUtilization and MaxLinkUtilization are busy-cycle fractions
	// over the switch-to-switch channels that carried traffic.
	AvgLinkUtilization, MaxLinkUtilization float64
}

// ThroughputGBs converts flit throughput to an aggregate GB/s figure
// assuming QDR InfiniBand links (4 GB/s per link, 64-byte flits, so one
// flit/cycle equals 4 GB/s).
func (r Result) ThroughputGBs() float64 { return r.FlitsPerCycle * 4.0 }

// packet is one in-flight packet.
type packet struct {
	dst   graph.NodeID
	sl    uint8
	flits int32
	// cur is the channel whose buffer currently holds the packet
	// (NoChannel while waiting for injection), curVL its virtual lane.
	cur   graph.ChannelID
	curVL uint8
	last  bool // tail packet of its message
	// route, if non-nil, is an explicit source route (PairPath override);
	// hop indexes the next channel to take.
	route []graph.ChannelID
	hop   int32
	// msg is the message this packet belongs to (latency accounting and
	// phase barriers).
	msg *msgState
}

// msgState tracks one message's lifecycle.
type msgState struct {
	start int64 // first flit entered the network (-1 = not yet)
	phase int32
}

// event kinds.
const (
	evArrival  = iota // packet fully received at the head of a channel
	evChanFree        // channel finished transmitting
)

type event struct {
	time int64
	kind int8
	ch   graph.ChannelID
	pkt  *packet
}

type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].time < q[j].time }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// sim is the run state.
type sim struct {
	net *graph.Network
	res *routing.Result
	cfg Config
	vcs int

	busyUntil []int64       // per channel
	bufCount  [][]int32     // [channel][vl] occupied packets (reserved at start)
	bufQueue  [][][]*packet // [channel][vl] FIFO of fully arrived packets
	outWait   [][]*packet   // per channel: FIFO of packets requesting it

	events eventQueue
	now    int64

	delivered      int64
	deliveredMsgs  int
	totalMsgs      int
	remainingFlits int64

	// Latency and utilization accounting.
	latencySum int64
	latencyMax int64
	busyCycles []int64 // per channel

	// Phase barriers: pending[phase] holds packets not yet injected;
	// phaseLeft[phase] counts undelivered messages of that phase.
	pending   [][]*packet
	phaseLeft []int
	curPhase  int
}

// Run simulates the delivery of messages under the routing result and
// returns throughput and deadlock information.
func Run(net *graph.Network, res *routing.Result, messages []Message, cfg Config) (Result, error) {
	if cfg.PacketFlits < 1 || cfg.MessageFlits < 1 || cfg.BufferPackets < 1 {
		return Result{}, fmt.Errorf("sim: invalid config %+v", cfg)
	}
	vcs := res.VCs
	if vcs < 1 {
		vcs = 1
	}
	s := &sim{
		net:       net,
		res:       res,
		cfg:       cfg,
		vcs:       vcs,
		busyUntil: make([]int64, net.NumChannels()),
		bufCount:  make([][]int32, net.NumChannels()),
		bufQueue:  make([][][]*packet, net.NumChannels()),
		outWait:   make([][]*packet, net.NumChannels()),
	}
	for c := range s.bufCount {
		s.bufCount[c] = make([]int32, vcs)
		s.bufQueue[c] = make([][]*packet, vcs)
	}
	// Segment messages into packets and enqueue them on their injection
	// channels in order (terminals serialize their own sends naturally).
	for _, m := range messages {
		if m.Src == m.Dst || net.Degree(m.Src) == 0 || net.Degree(m.Dst) == 0 {
			continue
		}
		inj := net.Out(m.Src)[0]
		sl := s.res.Layer(m.Src, m.Dst)
		var route []graph.ChannelID
		if res.PairPath != nil {
			route = res.PairPath[routing.PairKey(m.Src, m.Dst)]
		}
		s.totalMsgs++
		phase := 0
		if cfg.PhaseBarrier && m.Phase > 0 {
			phase = m.Phase
		}
		ms := &msgState{start: -1, phase: int32(phase)}
		for len(s.phaseLeft) <= phase {
			s.phaseLeft = append(s.phaseLeft, 0)
			s.pending = append(s.pending, nil)
		}
		s.phaseLeft[phase]++
		remaining := cfg.MessageFlits
		for remaining > 0 {
			f := cfg.PacketFlits
			if f > remaining {
				f = remaining
			}
			remaining -= f
			p := &packet{dst: m.Dst, sl: sl, flits: int32(f), cur: graph.NoChannel,
				last: remaining == 0, route: route, msg: ms}
			s.remainingFlits += int64(f)
			if route != nil {
				inj = route[0]
			}
			if cfg.PhaseBarrier {
				s.pending[phase] = append(s.pending[phase], p)
				// Remember the injection channel alongside the packet.
				p.cur = graph.NoChannel
				p.hop = int32(inj) // reused as injection channel until injected
			} else {
				s.outWait[inj] = append(s.outWait[inj], p)
			}
		}
	}
	s.busyCycles = make([]int64, net.NumChannels())
	if cfg.PhaseBarrier {
		for ph := range s.pending {
			if len(s.pending[ph]) > 0 {
				s.releasePhase(ph)
				break
			}
		}
	}
	// Prime all injection channels.
	for c := range s.outWait {
		if len(s.outWait[c]) > 0 {
			s.kick(graph.ChannelID(c))
		}
	}
	// Main loop.
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.time
		if cfg.MaxCycles > 0 && s.now > cfg.MaxCycles {
			return s.result(false, true), nil
		}
		switch e.kind {
		case evArrival:
			s.arrive(e.pkt, e.ch)
		case evChanFree:
			s.kick(e.ch)
		}
	}
	return s.result(s.delivered < s.remainingFlitsTotal(), false), nil
}

func (s *sim) remainingFlitsTotal() int64 { return s.remainingFlits }

func (s *sim) result(deadlocked, timedOut bool) Result {
	r := Result{
		Cycles:            s.now,
		DeliveredFlits:    s.delivered,
		DeliveredMessages: s.deliveredMsgs,
		TotalMessages:     s.totalMsgs,
		Deadlocked:        deadlocked,
		TimedOut:          timedOut,
	}
	if s.now > 0 {
		r.FlitsPerCycle = float64(s.delivered) / float64(s.now)
		used, sum, max := 0, 0.0, 0.0
		for c := range s.busyCycles {
			ch := s.net.Channel(graph.ChannelID(c))
			if s.busyCycles[c] == 0 || !s.net.IsSwitch(ch.From) || !s.net.IsSwitch(ch.To) {
				continue
			}
			u := float64(s.busyCycles[c]) / float64(s.now)
			used++
			sum += u
			if u > max {
				max = u
			}
		}
		if used > 0 {
			r.AvgLinkUtilization = sum / float64(used)
			r.MaxLinkUtilization = max
		}
	}
	if s.deliveredMsgs > 0 {
		r.AvgMsgLatency = float64(s.latencySum) / float64(s.deliveredMsgs)
		r.MaxMsgLatency = float64(s.latencyMax)
	}
	return r
}

// releasePhase moves a barrier phase's packets onto their injection
// channels.
func (s *sim) releasePhase(phase int) {
	if phase >= len(s.pending) {
		return
	}
	var kicked []graph.ChannelID
	for _, p := range s.pending[phase] {
		inj := graph.ChannelID(p.hop)
		p.hop = 0
		s.outWait[inj] = append(s.outWait[inj], p)
		kicked = append(kicked, inj)
	}
	s.pending[phase] = nil
	s.curPhase = phase
	for _, c := range kicked {
		s.kick(c)
	}
}

// nextChannel returns the packet's next hop from node u, or NoChannel at
// the destination.
func (s *sim) nextChannel(p *packet, u graph.NodeID) graph.ChannelID {
	if u == p.dst {
		return graph.NoChannel
	}
	if p.route != nil {
		if int(p.hop) >= len(p.route) {
			return graph.NoChannel
		}
		return p.route[p.hop]
	}
	return s.res.Table.Next(u, p.dst)
}

// vlOn returns the packet's VL on channel c, clamped to the VC count.
func (s *sim) vlOn(p *packet, c graph.ChannelID) uint8 {
	vl := s.res.VL(p.sl, c)
	if int(vl) >= s.vcs {
		vl = uint8(s.vcs - 1)
	}
	return vl
}

// deliver accounts a packet's arrival at its destination.
func (s *sim) deliver(p *packet) {
	s.delivered += int64(p.flits)
	if !p.last {
		return
	}
	s.deliveredMsgs++
	if p.msg != nil && p.msg.start >= 0 {
		lat := s.now - p.msg.start
		s.latencySum += lat
		if lat > s.latencyMax {
			s.latencyMax = lat
		}
	}
	if s.cfg.PhaseBarrier && p.msg != nil {
		ph := int(p.msg.phase)
		s.phaseLeft[ph]--
		if s.phaseLeft[ph] == 0 && ph == s.curPhase {
			// Release the next non-empty phase.
			for nxt := ph + 1; nxt < len(s.pending); nxt++ {
				if len(s.pending[nxt]) > 0 {
					s.releasePhase(nxt)
					return
				}
			}
		}
	}
}

// kick retries the waiters of channel c: if c is idle, the first request
// with downstream credit starts transmitting.
func (s *sim) kick(c graph.ChannelID) {
	if s.busyUntil[c] > s.now {
		return
	}
	// Note: startOn can reenter and append new waiters to s.outWait[c]
	// (the next buffer head may request the same channel), so the slice
	// must be re-read on every iteration and for the removal.
	for i := 0; i < len(s.outWait[c]); i++ {
		if s.startOn(s.outWait[c][i], c) {
			s.outWait[c] = append(s.outWait[c][:i], s.outWait[c][i+1:]...)
			return
		}
	}
}

// startOn attempts to begin transmitting p over c; it returns false when
// the downstream buffer has no credit. The channel must be idle.
func (s *sim) startOn(p *packet, c graph.ChannelID) bool {
	to := s.net.Channel(c).To
	vl := s.vlOn(p, c)
	if s.net.IsSwitch(to) {
		if s.bufCount[c][vl] >= int32(s.cfg.BufferPackets) {
			return false
		}
		s.bufCount[c][vl]++ // reserve the slot for the whole transfer
	}
	dur := int64(p.flits)
	s.busyUntil[c] = s.now + dur
	s.busyCycles[c] += dur
	if p.msg != nil && p.msg.start < 0 {
		p.msg.start = s.now // first flit of the message enters the network
	}
	heap.Push(&s.events, event{time: s.now + dur, kind: evChanFree, ch: c})
	heap.Push(&s.events, event{time: s.now + dur, kind: evArrival, ch: c, pkt: p})
	// Free the upstream buffer head: the packet's flits drain as they are
	// transmitted; the slot itself is released on arrival (see arrive).
	if p.cur != graph.NoChannel {
		q := s.bufQueue[p.cur][p.curVL]
		if len(q) == 0 || q[0] != p {
			panic("sim: transmitting packet is not at its buffer head")
		}
		s.bufQueue[p.cur][p.curVL] = q[1:]
		// The next head may request a different output immediately.
		if len(q) > 1 {
			s.request(q[1])
		}
	}
	return true
}

// request routes packet p (fully buffered at the head of its queue) to
// its next channel, starting immediately when possible.
func (s *sim) request(p *packet) {
	u := s.net.Channel(p.cur).To
	c := s.nextChannel(p, u)
	if c == graph.NoChannel {
		panic(fmt.Sprintf("sim: no route at node %d toward %d", u, p.dst))
	}
	if s.busyUntil[c] <= s.now && s.startOn(p, c) {
		return
	}
	s.outWait[c] = append(s.outWait[c], p)
}

// arrive completes a packet's transfer over channel c.
func (s *sim) arrive(p *packet, c graph.ChannelID) {
	// Release the upstream slot the packet occupied before this hop.
	if p.cur != graph.NoChannel {
		from := s.net.Channel(p.cur).To
		_ = from
		s.bufCount[p.cur][p.curVL]--
		s.kick(p.cur)
	}
	if p.route != nil {
		p.hop++ // advance the explicit source route
	}
	to := s.net.Channel(c).To
	vl := s.vlOn(p, c)
	if s.net.IsTerminal(to) {
		if to != p.dst {
			panic(fmt.Sprintf("sim: packet for %d delivered to terminal %d", p.dst, to))
		}
		// Ejection: terminals absorb at link rate.
		s.deliver(p)
		return
	}
	if to == p.dst {
		s.deliver(p)
		return
	}
	p.cur, p.curVL = c, vl
	s.bufQueue[c][vl] = append(s.bufQueue[c][vl], p)
	if len(s.bufQueue[c][vl]) == 1 {
		s.request(p)
	}
}
