// Package sim is a lossless-network simulator in the spirit of the
// OMNeT++ flit-level toolchain the paper evaluates with: input-buffered
// switches, virtual lanes, credit-based flow control, and deterministic
// destination-based forwarding from a routing.Result (including SL2VL
// mappings). Messages are segmented into packets of a few flits each, so
// wormhole-style pipelining emerges at packet granularity; a channel
// transmits one flit per cycle.
//
// The simulator is event-driven: a blocked packet schedules nothing, so a
// deadlock manifests naturally as an empty event queue with undelivered
// packets — the simulator detects and reports real deadlocks rather than
// assuming the routing is safe.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/telemetry"
)

// Config tunes the simulation. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// PacketFlits is the number of flits per packet (a channel occupies
	// one cycle per flit).
	PacketFlits int
	// MessageFlits is the message size in flits; messages are segmented
	// into ceil(MessageFlits/PacketFlits) packets. The paper's 2 KiB
	// messages at 64-byte flits are MessageFlits = 32.
	MessageFlits int
	// BufferPackets is the per-(channel, VL) input buffer capacity in
	// packets.
	BufferPackets int
	// MaxCycles aborts runs that exceed this simulated time (0 = no cap).
	MaxCycles int64
	// PhaseBarrier, when true, injects messages phase by phase: phase p+1
	// starts only after every phase-p message has been delivered
	// (globally synchronized exchange, like a sequence of blocking
	// MPI_Sendrecv rounds).
	PhaseBarrier bool
	// Telemetry, when non-nil, receives run counters (flits injected and
	// delivered, stall cycles, per-VC queue-depth high-water marks,
	// deadlock-detector sweeps). Observation-only; nil records nothing.
	Telemetry *telemetry.SimMetrics
}

// DefaultConfig returns a laptop-sized configuration: 512-byte messages
// of 8-flit packets. Use PaperConfig for the full 2 KiB messages.
func DefaultConfig() Config {
	return Config{PacketFlits: 8, MessageFlits: 16, BufferPackets: 2}
}

// PaperConfig matches the paper's message size (2 KiB at 64-byte flits).
func PaperConfig() Config {
	return Config{PacketFlits: 8, MessageFlits: 32, BufferPackets: 2}
}

// Message is one transfer between terminals.
type Message struct {
	Src, Dst graph.NodeID
	// Phase groups messages for barrier-synchronized injection (see
	// Config.PhaseBarrier); 0-based, ignored without barriers.
	Phase int
	// Group, when >= 1, makes this a multicast message of the cast group
	// with that id (routing.CastTable ids are 1-based): Src and Dst are
	// ignored, the group's source broadcasts over its cast tree —
	// replicating flits at branch switches — plus one serialized unicast
	// leg per UBM member. The message counts as delivered when every
	// tree receiver and every UBM member got the tail packet. Zero (the
	// zero value) means plain unicast.
	Group int
}

// Result summarizes a simulation run.
type Result struct {
	// Cycles is the makespan (time of last delivery, or time of deadlock
	// detection).
	Cycles int64
	// DeliveredFlits counts payload flits that reached their destination.
	DeliveredFlits int64
	// DeliveredMessages counts fully delivered messages.
	DeliveredMessages int
	// TotalMessages is the offered load.
	TotalMessages int
	// Deadlocked is true when the network wedged: undelivered packets
	// remain but no progress is possible.
	Deadlocked bool
	// TimedOut is true when MaxCycles was exceeded.
	TimedOut bool
	// FlitsPerCycle is aggregate delivered throughput.
	FlitsPerCycle float64
	// AvgMsgLatency and MaxMsgLatency measure cycles from a message's
	// first flit entering the network to its tail flit delivery.
	AvgMsgLatency, MaxMsgLatency float64
	// AvgLinkUtilization and MaxLinkUtilization are busy-cycle fractions
	// over the switch-to-switch channels that carried traffic.
	AvgLinkUtilization, MaxLinkUtilization float64
	// InjectedFlits counts payload flits whose packet entered the
	// network (first transmission on an injection channel);
	// ReplicatedFlits the extra flit copies created at cast-tree branch
	// switches (a k-way branch adds (k-1) copies of the packet). The
	// conservation invariant InjectedFlits + ReplicatedFlits ==
	// DeliveredFlits + InFlightFlits holds on every exit path
	// (ReplicatedFlits is 0 for pure-unicast runs).
	InjectedFlits   int64
	ReplicatedFlits int64
	// InFlightFlits is the number of injected-but-undelivered flits at
	// the end of the run, measured by an independent sweep of the
	// buffers and the event queue (0 after a fully delivered run).
	InFlightFlits int64
	// StallCycles accumulates cycles in-network packets spent waiting
	// for an output channel or downstream credit; CreditStalls counts
	// transmission attempts refused for lack of buffer credit.
	StallCycles  int64
	CreditStalls int64
	// DeadlockSweeps counts deadlock-detector sweeps; the detector runs
	// whenever the event queue drains and decides Deadlocked from the
	// undelivered traffic it finds.
	DeadlockSweeps int64
	// LinkBusy[c] is the number of cycles channel c spent transmitting:
	// the per-link load profile (the flow-level cross-validation ranks
	// links by it against the fluid model's LinkBytes).
	LinkBusy []int64
}

// ThroughputGBs converts flit throughput to an aggregate GB/s figure
// assuming QDR InfiniBand links (4 GB/s per link, 64-byte flits, so one
// flit/cycle equals 4 GB/s).
func (r Result) ThroughputGBs() float64 { return r.FlitsPerCycle * 4.0 }

// packet is one in-flight packet.
type packet struct {
	dst   graph.NodeID
	sl    uint8
	flits int32
	// cur is the channel whose buffer currently holds the packet
	// (NoChannel while waiting for injection), curVL its virtual lane.
	cur   graph.ChannelID
	curVL uint8
	last  bool // tail packet of its message
	// route, if non-nil, is an explicit source route (PairPath override);
	// hop indexes the next channel to take.
	route []graph.ChannelID
	hop   int32
	// waitSince is the cycle the packet was appended to an output-wait
	// queue (stall accounting; meaningful only while waiting).
	waitSince int64
	// msg is the message this packet belongs to (latency accounting and
	// phase barriers).
	msg *msgState
	// group > 0 marks a cast-tree packet (dst is NoNode); forwarding
	// follows CastGroup.Outs instead of the unicast table.
	group int32
	// outs and acquired are the branch-replication state while the
	// packet sits at a branch switch's buffer head: the switch's cast
	// out-channels (ascending ChannelID — the reservation order the
	// certified V-type dependencies assume) and how many of them are
	// already reserved. The packet holds its reservations and its input
	// buffer slot while waiting for the next output — the hold-and-wait
	// the V-type dependency edges model.
	outs     []graph.ChannelID
	acquired int32
}

// msgState tracks one message's lifecycle.
type msgState struct {
	start int64 // first flit entered the network (-1 = not yet)
	phase int32
	// tails is the number of tail-packet deliveries still owed before
	// the message counts as delivered: 1 for unicast, receivers + UBM
	// legs for a cast message.
	tails int32
}

// event kinds.
const (
	evArrival  = iota // packet fully received at the head of a channel
	evChanFree        // channel finished transmitting
)

type event struct {
	time int64
	kind int8
	ch   graph.ChannelID
	pkt  *packet
}

type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].time < q[j].time }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// sim is the run state.
type sim struct {
	net *graph.Network
	res *routing.Result
	cfg Config
	vcs int

	busyUntil []int64       // per channel
	bufCount  [][]int32     // [channel][vl] occupied packets (reserved at start)
	bufQueue  [][][]*packet // [channel][vl] FIFO of fully arrived packets
	outWait   [][]*packet   // per channel: FIFO of packets requesting it
	// reservedBy[c] is the replicating cast packet currently holding
	// idle channel c while it acquires its remaining branch outputs;
	// nobody else may start on a reserved channel.
	reservedBy []*packet

	events eventQueue
	now    int64

	delivered      int64
	deliveredMsgs  int
	totalMsgs      int
	remainingFlits int64
	replicated     int64

	// Telemetry accounting (always maintained; plain integer updates on
	// paths that already touch the same cache lines).
	injectedFlits int64
	stallCycles   int64
	creditStalls  int64
	sweeps        int64
	lastInFlight  int64
	vlHWM         []int64 // per-VL max single-queue depth, in packets

	// Latency and utilization accounting.
	latencySum int64
	latencyMax int64
	busyCycles []int64 // per channel

	// Phase barriers: pending[phase] holds packets not yet injected;
	// phaseLeft[phase] counts undelivered messages of that phase.
	pending   [][]*packet
	phaseLeft []int
	curPhase  int
}

// Run simulates the delivery of messages under the routing result and
// returns throughput and deadlock information.
func Run(net *graph.Network, res *routing.Result, messages []Message, cfg Config) (Result, error) {
	if cfg.PacketFlits < 1 || cfg.MessageFlits < 1 || cfg.BufferPackets < 1 {
		return Result{}, fmt.Errorf("sim: invalid config %+v", cfg)
	}
	vcs := res.VCs
	if vcs < 1 {
		vcs = 1
	}
	s := &sim{
		net:       net,
		res:       res,
		cfg:       cfg,
		vcs:       vcs,
		busyUntil: make([]int64, net.NumChannels()),
		bufCount:  make([][]int32, net.NumChannels()),
		bufQueue:  make([][][]*packet, net.NumChannels()),
		outWait:   make([][]*packet, net.NumChannels()),
	}
	for c := range s.bufCount {
		s.bufCount[c] = make([]int32, vcs)
		s.bufQueue[c] = make([][]*packet, vcs)
	}
	s.reservedBy = make([]*packet, net.NumChannels())
	s.vlHWM = make([]int64, vcs)
	// Segment messages into packets and enqueue them on their injection
	// channels in order (terminals serialize their own sends naturally).
	for _, m := range messages {
		if m.Group > 0 {
			s.injectCast(m)
			continue
		}
		if m.Src == m.Dst || net.Degree(m.Src) == 0 || net.Degree(m.Dst) == 0 {
			continue
		}
		inj := net.Out(m.Src)[0]
		sl := s.res.Layer(m.Src, m.Dst)
		var route []graph.ChannelID
		if res.PairPath != nil {
			route = res.PairPath[routing.PairKey(m.Src, m.Dst)]
		}
		if route != nil {
			inj = route[0]
		}
		s.totalMsgs++
		ms, phase := s.newMsg(m.Phase, 1)
		s.segment(ms, phase, inj, route, m.Dst, sl, 0)
	}
	s.busyCycles = make([]int64, net.NumChannels())
	if cfg.PhaseBarrier {
		for ph := range s.pending {
			if len(s.pending[ph]) > 0 {
				s.releasePhase(ph)
				break
			}
		}
	}
	// Prime all injection channels.
	for c := range s.outWait {
		if len(s.outWait[c]) > 0 {
			s.kick(graph.ChannelID(c))
		}
	}
	// Main loop.
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.time
		if cfg.MaxCycles > 0 && s.now > cfg.MaxCycles {
			// The popped event's packet (if any) is in transit but no
			// longer in the queue; hand it to the sweep explicitly.
			var extra *packet
			if e.kind == evArrival {
				extra = e.pkt
			}
			s.sweeps++
			inFlight, _ := s.sweep(extra)
			s.lastInFlight = inFlight
			return s.result(false, true), nil
		}
		switch e.kind {
		case evArrival:
			s.arrive(e.pkt, e.ch)
		case evChanFree:
			s.kick(e.ch)
		}
	}
	return s.result(s.detectDeadlock(), false), nil
}

// sweep measures undelivered traffic without consulting the delivery
// counters: inFlight is the flit total of injected packets still inside
// the network (input buffers, the event queue, plus the optional extra
// in-transit packet), waiting the flit total of packets never injected
// (injection wait queues and unreleased barrier phases). It is the
// independent measurement behind the deadlock detector and the
// injected == delivered + in-flight invariant.
func (s *sim) sweep(extra *packet) (inFlight, waiting int64) {
	for c := range s.bufQueue {
		for vl := range s.bufQueue[c] {
			for _, p := range s.bufQueue[c][vl] {
				inFlight += int64(p.flits)
			}
		}
	}
	for _, e := range s.events {
		if e.kind == evArrival {
			inFlight += int64(e.pkt.flits)
		}
	}
	if extra != nil {
		inFlight += int64(extra.flits)
	}
	for _, q := range s.outWait {
		for _, p := range q {
			if p.cur == graph.NoChannel {
				waiting += int64(p.flits)
			}
		}
	}
	for _, ph := range s.pending {
		for _, p := range ph {
			waiting += int64(p.flits)
		}
	}
	return inFlight, waiting
}

// detectDeadlock is the deadlock detector: it runs when the event queue
// drains (a blocked packet schedules nothing, so a wedged network goes
// silent) and sweeps the network for undelivered traffic. Any stranded
// or never-injectable flits mean no progress is possible — a real
// routing deadlock (or a disconnected destination), not a timeout.
func (s *sim) detectDeadlock() bool {
	s.sweeps++
	inFlight, waiting := s.sweep(nil)
	s.lastInFlight = inFlight
	return inFlight+waiting > 0
}

func (s *sim) remainingFlitsTotal() int64 { return s.remainingFlits }

func (s *sim) result(deadlocked, timedOut bool) Result {
	r := Result{
		Cycles:            s.now,
		DeliveredFlits:    s.delivered,
		DeliveredMessages: s.deliveredMsgs,
		TotalMessages:     s.totalMsgs,
		Deadlocked:        deadlocked,
		TimedOut:          timedOut,
		InjectedFlits:     s.injectedFlits,
		ReplicatedFlits:   s.replicated,
		InFlightFlits:     s.lastInFlight,
		StallCycles:       s.stallCycles,
		CreditStalls:      s.creditStalls,
		DeadlockSweeps:    s.sweeps,
		LinkBusy:          append([]int64(nil), s.busyCycles...),
	}
	s.reportTelemetry(&r)
	if s.now > 0 {
		r.FlitsPerCycle = float64(s.delivered) / float64(s.now)
		used, sum, max := 0, 0.0, 0.0
		for c := range s.busyCycles {
			ch := s.net.Channel(graph.ChannelID(c))
			if s.busyCycles[c] == 0 || !s.net.IsSwitch(ch.From) || !s.net.IsSwitch(ch.To) {
				continue
			}
			u := float64(s.busyCycles[c]) / float64(s.now)
			used++
			sum += u
			if u > max {
				max = u
			}
		}
		if used > 0 {
			r.AvgLinkUtilization = sum / float64(used)
			r.MaxLinkUtilization = max
		}
	}
	if s.deliveredMsgs > 0 {
		r.AvgMsgLatency = float64(s.latencySum) / float64(s.deliveredMsgs)
		r.MaxMsgLatency = float64(s.latencyMax)
	}
	return r
}

// reportTelemetry publishes the finished run into the telemetry bundle
// (one batch of atomic adds; no per-cycle overhead).
func (s *sim) reportTelemetry(r *Result) {
	tm := s.cfg.Telemetry
	if tm == nil {
		return
	}
	tm.Runs.Inc()
	tm.FlitsInjected.Add(r.InjectedFlits)
	tm.FlitsReplicated.Add(r.ReplicatedFlits)
	tm.FlitsDelivered.Add(r.DeliveredFlits)
	tm.FlitsInFlight.Set(r.InFlightFlits)
	tm.MessagesDelivered.Add(int64(r.DeliveredMessages))
	tm.StallCycles.Add(r.StallCycles)
	tm.CreditStalls.Add(r.CreditStalls)
	tm.DeadlockSweeps.Add(r.DeadlockSweeps)
	for vl, hwm := range s.vlHWM {
		if hwm > 0 {
			tm.QueueHWMFor(vl).SetMax(hwm)
		}
	}
	if r.TimedOut {
		tm.Timeouts.Inc()
	}
	if r.Deadlocked {
		tm.Deadlocks.Inc()
		tm.Events.Emit("sim_deadlock", map[string]int64{
			"cycles":          r.Cycles,
			"stranded_flits":  r.InFlightFlits,
			"delivered_flits": r.DeliveredFlits,
			"injected_flits":  r.InjectedFlits,
		})
	}
	tm.Events.Emit("sim_run", map[string]int64{
		"cycles":          r.Cycles,
		"injected_flits":  r.InjectedFlits,
		"delivered_flits": r.DeliveredFlits,
		"stall_cycles":    r.StallCycles,
		"deadlocked":      b2i(r.Deadlocked),
		"timed_out":       b2i(r.TimedOut),
	})
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// releasePhase moves a barrier phase's packets onto their injection
// channels.
func (s *sim) releasePhase(phase int) {
	if phase >= len(s.pending) {
		return
	}
	var kicked []graph.ChannelID
	for _, p := range s.pending[phase] {
		inj := graph.ChannelID(p.hop)
		p.hop = 0
		s.outWait[inj] = append(s.outWait[inj], p)
		kicked = append(kicked, inj)
	}
	s.pending[phase] = nil
	s.curPhase = phase
	for _, c := range kicked {
		s.kick(c)
	}
}

// newMsg allocates the lifecycle state of one message with the given
// number of owed tail deliveries, registering its barrier phase.
func (s *sim) newMsg(msgPhase, tails int) (*msgState, int) {
	phase := 0
	if s.cfg.PhaseBarrier && msgPhase > 0 {
		phase = msgPhase
	}
	ms := &msgState{start: -1, phase: int32(phase), tails: int32(tails)}
	for len(s.phaseLeft) <= phase {
		s.phaseLeft = append(s.phaseLeft, 0)
		s.pending = append(s.pending, nil)
	}
	s.phaseLeft[phase]++
	return ms, phase
}

// segment splits one message (or one cast train / UBM leg of it) into
// packets and enqueues them on the injection channel.
func (s *sim) segment(ms *msgState, phase int, inj graph.ChannelID, route []graph.ChannelID, dst graph.NodeID, sl uint8, group int32) {
	remaining := s.cfg.MessageFlits
	for remaining > 0 {
		f := s.cfg.PacketFlits
		if f > remaining {
			f = remaining
		}
		remaining -= f
		p := &packet{dst: dst, sl: sl, flits: int32(f), cur: graph.NoChannel,
			last: remaining == 0, route: route, msg: ms, group: group}
		s.remainingFlits += int64(f)
		if s.cfg.PhaseBarrier {
			s.pending[phase] = append(s.pending[phase], p)
			p.hop = int32(inj) // reused as injection channel until injected
		} else {
			s.outWait[inj] = append(s.outWait[inj], p)
		}
	}
}

// injectCast enqueues one multicast message: a cast train over the
// group's tree (when it serves receivers) plus one unicast leg per UBM
// member. All trains share the source's injection channel FIFO, so the
// UBM legs are serialized exactly as the fallback's name promises.
func (s *sim) injectCast(m Message) {
	if s.res.Cast == nil {
		return
	}
	g := s.res.Cast.Group(m.Group)
	if g == nil || g.Source == graph.NoNode || s.net.Degree(g.Source) == 0 {
		return
	}
	endpoints := len(g.Receivers) + len(g.UBM)
	if endpoints == 0 {
		return
	}
	s.totalMsgs++
	ms, phase := s.newMsg(m.Phase, endpoints)
	inj := s.net.Out(g.Source)[0]
	if len(g.Receivers) > 0 {
		s.segment(ms, phase, inj, nil, graph.NoNode, g.SL, int32(m.Group))
	}
	for _, u := range g.UBM {
		var route []graph.ChannelID
		if s.res.PairPath != nil {
			route = s.res.PairPath[routing.PairKey(g.Source, u)]
		}
		leg := inj
		if route != nil {
			leg = route[0]
		}
		s.segment(ms, phase, leg, route, u, s.res.Layer(g.Source, u), 0)
	}
}

// nextChannel returns the packet's next hop from node u, or NoChannel at
// the destination.
func (s *sim) nextChannel(p *packet, u graph.NodeID) graph.ChannelID {
	if u == p.dst {
		return graph.NoChannel
	}
	if p.route != nil {
		if int(p.hop) >= len(p.route) {
			return graph.NoChannel
		}
		return p.route[p.hop]
	}
	return s.res.Table.Next(u, p.dst)
}

// vlOn returns the packet's VL on channel c, clamped to the VC count.
func (s *sim) vlOn(p *packet, c graph.ChannelID) uint8 {
	vl := s.res.VL(p.sl, c)
	if int(vl) >= s.vcs {
		vl = uint8(s.vcs - 1)
	}
	return vl
}

// deliver accounts a packet's arrival at its destination. A message is
// complete when its last owed tail delivery lands (one for unicast; one
// per tree receiver and UBM leg for a cast message).
func (s *sim) deliver(p *packet) {
	s.delivered += int64(p.flits)
	if !p.last {
		return
	}
	if p.msg != nil {
		p.msg.tails--
		if p.msg.tails != 0 {
			// More endpoints owed — or a mis-routed cast graph delivering
			// surplus copies (tails < 0), which must not re-complete the
			// message.
			return
		}
	}
	s.deliveredMsgs++
	if p.msg != nil && p.msg.start >= 0 {
		lat := s.now - p.msg.start
		s.latencySum += lat
		if lat > s.latencyMax {
			s.latencyMax = lat
		}
	}
	if s.cfg.PhaseBarrier && p.msg != nil {
		ph := int(p.msg.phase)
		s.phaseLeft[ph]--
		if s.phaseLeft[ph] == 0 && ph == s.curPhase {
			// Release the next non-empty phase.
			for nxt := ph + 1; nxt < len(s.pending); nxt++ {
				if len(s.pending[nxt]) > 0 {
					s.releasePhase(nxt)
					return
				}
			}
		}
	}
}

// kick retries the waiters of channel c: if c is idle (and not reserved
// by a replicating cast packet), the first request with downstream
// credit starts transmitting — or, for a cast packet mid-replication,
// reserves the channel and continues acquiring its remaining outputs.
func (s *sim) kick(c graph.ChannelID) {
	if s.busyUntil[c] > s.now || s.reservedBy[c] != nil {
		return
	}
	// Note: startOn can reenter and append new waiters to s.outWait[c]
	// (the next buffer head may request the same channel), so the slice
	// must be re-read on every iteration and for the removal.
	for i := 0; i < len(s.outWait[c]); i++ {
		p := s.outWait[c][i]
		if p.group > 0 && p.cur != graph.NoChannel {
			// Cast packet at a branch switch waiting for output c.
			if !s.castGrant(p, c) {
				continue // no credit yet; let other waiters try
			}
			s.stallCycles += s.now - p.waitSince
			s.outWait[c] = append(s.outWait[c][:i], s.outWait[c][i+1:]...)
			s.castAcquire(p)
			return // c is now reserved (or transmitting) for p
		}
		if s.startOn(p, c) {
			// In-network packets accumulate stall cycles for the whole
			// time they sat in the wait queue (injection queuing at the
			// source is not a network stall).
			if p.cur != graph.NoChannel {
				s.stallCycles += s.now - p.waitSince
			}
			s.outWait[c] = append(s.outWait[c][:i], s.outWait[c][i+1:]...)
			return
		}
	}
}

// startOn attempts to begin transmitting p over c; it returns false when
// the downstream buffer has no credit. The channel must be idle.
func (s *sim) startOn(p *packet, c graph.ChannelID) bool {
	to := s.net.Channel(c).To
	vl := s.vlOn(p, c)
	if s.net.IsSwitch(to) {
		if s.bufCount[c][vl] >= int32(s.cfg.BufferPackets) {
			s.creditStalls++
			return false
		}
		s.bufCount[c][vl]++ // reserve the slot for the whole transfer
	}
	if p.cur == graph.NoChannel {
		// First transmission from the source: the packet enters the
		// network now.
		s.injectedFlits += int64(p.flits)
	}
	dur := int64(p.flits)
	s.busyUntil[c] = s.now + dur
	s.busyCycles[c] += dur
	if p.msg != nil && p.msg.start < 0 {
		p.msg.start = s.now // first flit of the message enters the network
	}
	heap.Push(&s.events, event{time: s.now + dur, kind: evChanFree, ch: c})
	heap.Push(&s.events, event{time: s.now + dur, kind: evArrival, ch: c, pkt: p})
	// Free the upstream buffer head: the packet's flits drain as they are
	// transmitted; the slot itself is released on arrival (see arrive).
	if p.cur != graph.NoChannel {
		q := s.bufQueue[p.cur][p.curVL]
		if len(q) == 0 || q[0] != p {
			panic("sim: transmitting packet is not at its buffer head")
		}
		s.bufQueue[p.cur][p.curVL] = q[1:]
		// The next head may request a different output immediately.
		if len(q) > 1 {
			s.request(q[1])
		}
	}
	return true
}

// request routes packet p (fully buffered at the head of its queue) to
// its next channel, starting immediately when possible.
func (s *sim) request(p *packet) {
	u := s.net.Channel(p.cur).To
	if p.group > 0 {
		s.castRequest(p, u)
		return
	}
	c := s.nextChannel(p, u)
	if c == graph.NoChannel {
		panic(fmt.Sprintf("sim: no route at node %d toward %d", u, p.dst))
	}
	if s.busyUntil[c] <= s.now && s.reservedBy[c] == nil && s.startOn(p, c) {
		return
	}
	p.waitSince = s.now
	s.outWait[c] = append(s.outWait[c], p)
}

// castRequest begins the branch replication of cast packet p at switch
// u: look up the group's out-channels and start acquiring them in
// ascending ChannelID order.
func (s *sim) castRequest(p *packet, u graph.NodeID) {
	g := s.res.Cast.Group(int(p.group))
	if g == nil {
		panic(fmt.Sprintf("sim: cast packet of unknown group %d", p.group))
	}
	outs := g.Outs(u)
	if len(outs) == 0 {
		// A mis-built tree with a dead end: the packet stays buffered
		// forever and the deadlock detector reports the wedge.
		return
	}
	p.outs = outs
	p.acquired = 0
	s.castAcquire(p)
}

// castAcquire reserves p's branch outputs one by one in ascending
// ChannelID order. The packet holds everything it already reserved (and
// its input buffer slot) while waiting for the next output — the
// hold-and-wait behavior the certified V-type dependencies model. Once
// every output is reserved the packet fires on all of them in lockstep.
func (s *sim) castAcquire(p *packet) {
	for int(p.acquired) < len(p.outs) {
		c := p.outs[p.acquired]
		if s.busyUntil[c] > s.now || s.reservedBy[c] != nil || !s.castGrant(p, c) {
			p.waitSince = s.now
			s.outWait[c] = append(s.outWait[c], p)
			return
		}
	}
	s.castFire(p)
}

// castGrant tries to reserve idle output c for cast packet p (the output
// it is currently acquiring): downstream credit permitting, the channel
// is held — unavailable to everyone else — until the packet fires. The
// caller has checked that c is idle and unreserved.
func (s *sim) castGrant(p *packet, c graph.ChannelID) bool {
	vl := s.vlOn(p, c)
	if s.net.IsSwitch(s.net.Channel(c).To) {
		if s.bufCount[c][vl] >= int32(s.cfg.BufferPackets) {
			s.creditStalls++
			return false
		}
		s.bufCount[c][vl]++ // reserve the downstream slot now
	}
	s.reservedBy[c] = p
	p.acquired++
	return true
}

// castFire transmits cast packet p on all its reserved branch outputs
// simultaneously, one independent copy per branch, and releases the
// input buffer slot (virtual cut-through at the branch: the single
// buffered copy drains into k outputs at once).
func (s *sim) castFire(p *packet) {
	dur := int64(p.flits)
	if p.msg != nil && p.msg.start < 0 {
		p.msg.start = s.now
	}
	for _, c := range p.outs {
		s.reservedBy[c] = nil
		s.busyUntil[c] = s.now + dur
		s.busyCycles[c] += dur
		cp := &packet{dst: p.dst, sl: p.sl, flits: p.flits, cur: graph.NoChannel,
			last: p.last, msg: p.msg, group: p.group}
		heap.Push(&s.events, event{time: s.now + dur, kind: evChanFree, ch: c})
		heap.Push(&s.events, event{time: s.now + dur, kind: evArrival, ch: c, pkt: cp})
	}
	s.replicated += int64(len(p.outs)-1) * int64(p.flits)
	p.outs = nil
	// Pop the packet from its buffer head and free the slot: the clones
	// carry cur == NoChannel, so no arrival will release it again.
	q := s.bufQueue[p.cur][p.curVL]
	if len(q) == 0 || q[0] != p {
		panic("sim: replicating packet is not at its buffer head")
	}
	s.bufQueue[p.cur][p.curVL] = q[1:]
	s.bufCount[p.cur][p.curVL]--
	s.kick(p.cur)
	if len(q) > 1 {
		s.request(q[1])
	}
}

// arrive completes a packet's transfer over channel c.
func (s *sim) arrive(p *packet, c graph.ChannelID) {
	// Release the upstream slot the packet occupied before this hop.
	if p.cur != graph.NoChannel {
		from := s.net.Channel(p.cur).To
		_ = from
		s.bufCount[p.cur][p.curVL]--
		s.kick(p.cur)
	}
	if p.route != nil {
		p.hop++ // advance the explicit source route
	}
	to := s.net.Channel(c).To
	vl := s.vlOn(p, c)
	if s.net.IsTerminal(to) {
		if p.group == 0 && to != p.dst {
			panic(fmt.Sprintf("sim: packet for %d delivered to terminal %d", p.dst, to))
		}
		// Ejection: terminals absorb at link rate. A cast ejection
		// delivers to whatever receiver the tree put there.
		s.deliver(p)
		return
	}
	if p.group == 0 && to == p.dst {
		s.deliver(p)
		return
	}
	p.cur, p.curVL = c, vl
	s.bufQueue[c][vl] = append(s.bufQueue[c][vl], p)
	if d := int64(len(s.bufQueue[c][vl])); d > s.vlHWM[vl] {
		s.vlHWM[vl] = d
	}
	if len(s.bufQueue[c][vl]) == 1 {
		s.request(p)
	}
}
