package sim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/topology"
)

// lineFixture: 3 switches in a row, one terminal each, tree routing.
func lineFixture(t *testing.T) (*graph.Network, *routing.Result) {
	t.Helper()
	b := graph.NewBuilder()
	s := []graph.NodeID{b.AddSwitch(""), b.AddSwitch(""), b.AddSwitch("")}
	b.AddLink(s[0], s[1])
	b.AddLink(s[1], s[2])
	var terms []graph.NodeID
	for _, sw := range s {
		tm := b.AddTerminal("")
		b.AddLink(tm, sw)
		terms = append(terms, tm)
	}
	g := b.MustBuild()
	res, err := core.New(core.DefaultOptions()).Route(g, terms, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestSingleMessageLatency(t *testing.T) {
	g, res := lineFixture(t)
	terms := g.Terminals()
	cfg := Config{PacketFlits: 8, MessageFlits: 16, BufferPackets: 2}
	r, err := Run(g, res, []Message{{Src: terms[0], Dst: terms[2]}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.TimedOut {
		t.Fatalf("unexpected stall: %+v", r)
	}
	if r.DeliveredFlits != 16 || r.DeliveredMessages != 1 {
		t.Errorf("delivered %d flits / %d msgs, want 16 / 1", r.DeliveredFlits, r.DeliveredMessages)
	}
	// Path t0->s0->s1->s2->t2 = 4 channels; store-and-forward per 8-flit
	// packet with the second packet pipelined: 4*8 + 8 = 40 cycles.
	if r.Cycles != 40 {
		t.Errorf("makespan = %d cycles, want 40", r.Cycles)
	}
}

func TestAllMessagesDeliveredOnDeadlockFreeRouting(t *testing.T) {
	tp := topology.Torus3D(3, 3, 2, 2, 1)
	g := tp.Net
	res, err := core.New(core.DefaultOptions()).Route(g, g.Terminals(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := AllToAllShift(g.Terminals(), 0)
	r, err := Run(g, res, msgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked {
		t.Fatal("deadlock on verified deadlock-free routing")
	}
	want := len(g.Terminals()) * (len(g.Terminals()) - 1)
	if r.DeliveredMessages != want {
		t.Errorf("delivered %d messages, want %d", r.DeliveredMessages, want)
	}
	if r.FlitsPerCycle <= 0 {
		t.Error("throughput not positive")
	}
}

// clockwiseRingResult reproduces the canonical deadlocking routing.
func clockwiseRingResult(tp *topology.Topology) *routing.Result {
	g := tp.Net
	n := graph.NodeID(g.NumSwitches())
	dests := g.Terminals()
	tbl := routing.NewTable(g, dests)
	for _, d := range dests {
		att := g.TerminalSwitch(d)
		for _, s := range g.Switches() {
			if s == att {
				tbl.Set(s, d, g.FindChannel(s, d))
			} else {
				tbl.Set(s, d, g.FindChannel(s, (s+1)%n))
			}
		}
	}
	return &routing.Result{Algorithm: "clockwise", Table: tbl, VCs: 1}
}

func TestSimulatorDetectsDeadlock(t *testing.T) {
	// All-to-all over an all-clockwise ring with tiny buffers must wedge:
	// the CDG cycle becomes a real buffer-hold cycle under load.
	tp := topology.Ring(6, 2)
	res := clockwiseRingResult(tp)
	msgs := AllToAllShift(tp.Net.Terminals(), 0)
	cfg := Config{PacketFlits: 8, MessageFlits: 64, BufferPackets: 1, MaxCycles: 2_000_000}
	r, err := Run(tp.Net, res, msgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deadlocked {
		t.Errorf("expected deadlock, got %+v", r)
	}
	if r.DeliveredMessages == r.TotalMessages {
		t.Error("deadlock flagged but all messages delivered")
	}
}

func TestNueThroughputBeatsTreeRouting(t *testing.T) {
	// Balanced multi-path routing must outperform single-spanning-tree
	// routing on a torus under all-to-all (the premise of Fig. 1a/10).
	tp := topology.Torus3D(3, 3, 3, 2, 1)
	g := tp.Net
	dests := g.Terminals()

	nue, err := core.New(core.DefaultOptions()).Route(g, dests, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree := graph.SpanningTree(g, 0)
	tbl := routing.NewTable(g, dests)
	for _, d := range dests {
		for _, s := range g.Switches() {
			if p := tree.TreePath(s, d); len(p) > 0 {
				tbl.Set(s, d, p[0])
			}
		}
	}
	treeRes := &routing.Result{Algorithm: "tree", Table: tbl, VCs: 1}

	msgs := AllToAllShift(dests, 8)
	cfg := DefaultConfig()
	rNue, err := Run(g, nue, msgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rTree, err := Run(g, treeRes, msgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rNue.Deadlocked || rTree.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	if rNue.FlitsPerCycle <= rTree.FlitsPerCycle {
		t.Errorf("Nue throughput %.3f not better than tree routing %.3f",
			rNue.FlitsPerCycle, rTree.FlitsPerCycle)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	g, res := lineFixture(t)
	if _, err := Run(g, res, nil, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestMaxCyclesTimeout(t *testing.T) {
	tp := topology.Torus3D(3, 3, 2, 2, 1)
	g := tp.Net
	res, err := core.New(core.DefaultOptions()).Route(g, g.Terminals(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 10
	r, err := Run(g, res, AllToAllShift(g.Terminals(), 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Error("MaxCycles not enforced")
	}
}

func TestTrafficGenerators(t *testing.T) {
	terms := []graph.NodeID{10, 11, 12, 13}
	full := AllToAllShift(terms, 0)
	if len(full) != 12 {
		t.Errorf("full all-to-all = %d messages, want 12", len(full))
	}
	limited := AllToAllShift(terms, 2)
	if len(limited) != 8 {
		t.Errorf("2-phase all-to-all = %d messages, want 8", len(limited))
	}
	for _, m := range full {
		if m.Src == m.Dst {
			t.Fatal("self message generated")
		}
	}
	rng := rand.New(rand.NewSource(1))
	ur := UniformRandom(terms, 100, rng)
	if len(ur) != 100 {
		t.Errorf("UniformRandom = %d messages, want 100", len(ur))
	}
	for _, m := range ur {
		if m.Src == m.Dst {
			t.Fatal("self message in uniform random")
		}
	}
	bi := Bisection(terms, 3)
	if len(bi) != 12 {
		t.Errorf("Bisection = %d messages, want 12", len(bi))
	}
}

func TestThroughputGBsConversion(t *testing.T) {
	r := Result{FlitsPerCycle: 2}
	if got := r.ThroughputGBs(); got != 8 {
		t.Errorf("ThroughputGBs = %g, want 8", got)
	}
}

func TestUniformRandomTrafficDelivers(t *testing.T) {
	tp := topology.Torus3D(3, 3, 2, 2, 1)
	g := tp.Net
	res, err := core.New(core.DefaultOptions()).Route(g, g.Terminals(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	msgs := UniformRandom(g.Terminals(), 500, rng)
	r, err := Run(g, res, msgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.DeliveredMessages != 500 {
		t.Errorf("delivered %d/500, deadlocked=%v", r.DeliveredMessages, r.Deadlocked)
	}
}

func TestBisectionTrafficDelivers(t *testing.T) {
	tp := topology.KAryNTree(3, 2, 3)
	g := tp.Net
	res, err := core.New(core.DefaultOptions()).Route(g, g.Terminals(), 1)
	if err != nil {
		t.Fatal(err)
	}
	msgs := Bisection(g.Terminals(), 2)
	r, err := Run(g, res, msgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.DeliveredMessages != len(msgs) {
		t.Errorf("delivered %d/%d, deadlocked=%v", r.DeliveredMessages, len(msgs), r.Deadlocked)
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	tp := topology.Torus3D(3, 3, 1, 2, 1)
	g := tp.Net
	res, err := core.New(core.DefaultOptions()).Route(g, g.Terminals(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := AllToAllShift(g.Terminals(), 0)
	a, err := Run(g, res, msgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, res, msgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.DeliveredFlits != b.DeliveredFlits {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMessagesBetweenDisconnectedTerminalsSkipped(t *testing.T) {
	tp := topology.Torus3D(3, 3, 1, 2, 1)
	faulty := topology.FailSwitch(tp, tp.Torus.SwitchAt[0][0][0])
	g := faulty.Net
	var live []graph.NodeID
	for _, tm := range g.Terminals() {
		if g.Degree(tm) > 0 {
			live = append(live, tm)
		}
	}
	res, err := core.New(core.DefaultOptions()).Route(g, live, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Include messages touching orphaned terminals: the simulator must
	// skip them rather than crash or hang.
	msgs := AllToAllShift(g.Terminals(), 2)
	r, err := Run(g, res, msgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked {
		t.Error("deadlock flagged on fault-filtered traffic")
	}
}

func TestPhaseBarrierDeliversAll(t *testing.T) {
	tp := topology.Torus3D(3, 3, 1, 2, 1)
	g := tp.Net
	res, err := core.New(core.DefaultOptions()).Route(g, g.Terminals(), 2)
	if err != nil {
		t.Fatal(err)
	}
	msgs := AllToAllShift(g.Terminals(), 0)
	cfg := DefaultConfig()
	cfg.PhaseBarrier = true
	r, err := Run(g, res, msgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Deadlocked || r.DeliveredMessages != r.TotalMessages {
		t.Fatalf("barrier run incomplete: %+v", r)
	}
	// Barriers serialize phases, so the makespan must not beat the
	// unsynchronized run.
	free, err := Run(g, res, msgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles < free.Cycles {
		t.Errorf("barrier makespan %d < unsynchronized %d", r.Cycles, free.Cycles)
	}
}

func TestLatencyAndUtilizationStats(t *testing.T) {
	g, res := lineFixture(t)
	terms := g.Terminals()
	cfg := Config{PacketFlits: 8, MessageFlits: 16, BufferPackets: 2}
	r, err := Run(g, res, []Message{{Src: terms[0], Dst: terms[2]}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One message over 4 channels, 2 packets: latency = makespan = 40.
	if r.AvgMsgLatency != 40 || r.MaxMsgLatency != 40 {
		t.Errorf("latency = %g/%g, want 40/40", r.AvgMsgLatency, r.MaxMsgLatency)
	}
	// Two switch-switch channels each busy 16 of 40 cycles.
	if r.MaxLinkUtilization != 0.4 {
		t.Errorf("max utilization = %g, want 0.4", r.MaxLinkUtilization)
	}
	if r.AvgLinkUtilization != 0.4 {
		t.Errorf("avg utilization = %g, want 0.4", r.AvgLinkUtilization)
	}
}
