package sim

import (
	"math/rand"

	"repro/internal/graph"
)

// AllToAllShift generates the paper's traffic pattern: every terminal
// sends one message to every other terminal, ordered by shift distance
// (in phase p, terminal i addresses terminal (i+p) mod T). phases limits
// the number of shift distances (0 or >= T means the full all-to-all).
func AllToAllShift(terminals []graph.NodeID, phases int) []Message {
	t := len(terminals)
	if phases <= 0 || phases >= t {
		phases = t - 1
	}
	msgs := make([]Message, 0, t*phases)
	// Interleave by phase so that all terminals progress through the same
	// shift distance together, like the exchange pattern of the paper's
	// simulator.
	for p := 1; p <= phases; p++ {
		for i := 0; i < t; i++ {
			msgs = append(msgs, Message{Src: terminals[i], Dst: terminals[(i+p)%t], Phase: p - 1})
		}
	}
	return msgs
}

// UniformRandom generates n messages with uniformly random source and
// destination terminals (src != dst).
func UniformRandom(terminals []graph.NodeID, n int, rng *rand.Rand) []Message {
	msgs := make([]Message, 0, n)
	t := len(terminals)
	for len(msgs) < n && t > 1 {
		i := rng.Intn(t)
		j := rng.Intn(t - 1)
		if j >= i {
			j++
		}
		msgs = append(msgs, Message{Src: terminals[i], Dst: terminals[j]})
	}
	return msgs
}

// Bisection generates traffic across a node split: terminal i of the
// first half exchanges messages with terminal i of the second half,
// repeated rounds times.
func Bisection(terminals []graph.NodeID, rounds int) []Message {
	half := len(terminals) / 2
	var msgs []Message
	for r := 0; r < rounds; r++ {
		for i := 0; i < half; i++ {
			msgs = append(msgs, Message{Src: terminals[i], Dst: terminals[half+i]})
			msgs = append(msgs, Message{Src: terminals[half+i], Dst: terminals[i]})
		}
	}
	return msgs
}
