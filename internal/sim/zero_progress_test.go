package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// TestZeroProgressRunHasNoNaN pins the zero-progress guards in
// result(): a run that ends at cycle 0 — an empty message list is the
// degenerate case — must report zeroed derived metrics, never 0/0 NaN
// in FlitsPerCycle, the link utilizations, or the latency averages.
func TestZeroProgressRunHasNoNaN(t *testing.T) {
	tp := topology.Ring(4, 1)
	res, err := core.New(core.DefaultOptions()).Route(tp.Net, tp.Net.Terminals(), 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(tp.Net, res, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"FlitsPerCycle":      r.FlitsPerCycle,
		"AvgMsgLatency":      r.AvgMsgLatency,
		"MaxMsgLatency":      r.MaxMsgLatency,
		"AvgLinkUtilization": r.AvgLinkUtilization,
		"MaxLinkUtilization": r.MaxLinkUtilization,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v on a zero-progress run", name, v)
		}
		if v != 0 {
			t.Errorf("%s = %v, want 0 (nothing moved)", name, v)
		}
	}
	if r.Deadlocked || r.TimedOut {
		t.Fatalf("empty run misclassified: %+v", r)
	}
	if r.Cycles != 0 || r.DeliveredFlits != 0 {
		t.Fatalf("empty run made progress: %+v", r)
	}
	// The per-link busy profile is exposed (for flowsim
	// cross-validation) and all-zero here.
	if len(r.LinkBusy) != tp.Net.NumChannels() {
		t.Fatalf("LinkBusy has %d entries, want %d", len(r.LinkBusy), tp.Net.NumChannels())
	}
	for c, b := range r.LinkBusy {
		if b != 0 {
			t.Fatalf("channel %d busy %d cycles on an empty run", c, b)
		}
	}
}
