package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// bucketLabel renders the upper bound of bucket i ("1", "2", "4", ...;
// the last bucket is "+Inf").
func bucketLabel(i int) string {
	if i >= HistogramBuckets-1 {
		return "+Inf"
	}
	return strconv.FormatInt(int64(1)<<uint(i), 10)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters as `<name> <value>`, gauges likewise,
// histograms as `<name>_bucket{le="..."}` / `_sum` / `_count` series.
// Metric families are emitted in lexical name order so scrapes are
// diffable. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	for _, name := range sortedNames(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Load()); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, gauges[name].Load()); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(hists) {
		h := hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i := 0; i < HistogramBuckets; i++ {
			n := h.buckets[i].Load()
			cum += n
			// Sparse exposition: only emit boundaries where the cumulative
			// count changes, plus the mandatory +Inf terminal bucket.
			if n == 0 && i < HistogramBuckets-1 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, bucketLabel(i), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}
