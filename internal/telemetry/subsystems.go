package telemetry

import "strconv"

// This file defines the pre-wired metric bundles of the three
// instrumented subsystems. Each bundle is a plain struct of nil-safe
// handles: a nil bundle pointer (telemetry off) costs one predictable
// branch per recording site and allocates nothing.

// EngineMetrics instruments the Nue routing engine (internal/core).
type EngineMetrics struct {
	// Routes counts Route invocations; Layers routed virtual layers.
	Routes, Layers *Counter
	// PartitionNanos, BetweennessNanos and DijkstraNanos accumulate the
	// wall time of the three engine phases: destination partitioning
	// (§4.5), escape-root betweenness selection (§4.3), and the per-layer
	// modified-Dijkstra loop (Algorithm 1).
	PartitionNanos, BetweennessNanos, DijkstraNanos *Counter
	// LayerBetweennessNanos and LayerDijkstraNanos are the per-layer
	// distributions of the same phases.
	LayerBetweennessNanos, LayerDijkstraNanos *Histogram
	// DijkstraRuns counts modified-Dijkstra runs (one per routed
	// destination, including those that end in an escape fallback).
	DijkstraRuns *Counter
	// EscapeFallbacks counts destinations routed entirely over escape
	// paths; IslandsResolved impasses solved by backtracking (§4.6.2);
	// ShortcutTakes settled nodes improved through a former island
	// (§4.6.3).
	EscapeFallbacks, IslandsResolved, ShortcutTakes *Counter
	// BlockedEncounters counts blocked complete-CDG edges skipped during
	// relaxation; CycleSearches and EdgesBlocked aggregate the CDG cycle
	// detector; EdgeUses counts TryUseEdge attempts.
	BlockedEncounters, CycleSearches, EdgesBlocked, EdgeUses *Counter
	// Events receives one "engine_layer" event per routed layer with its
	// size and phase timings.
	Events *Ring
}

// Engine returns the engine bundle registered under engine_* names (nil,
// all-no-op, on a nil registry).
func (r *Registry) Engine() *EngineMetrics {
	if r == nil {
		return nil
	}
	return &EngineMetrics{
		Routes:                r.Counter("engine_routes_total"),
		Layers:                r.Counter("engine_layers_routed_total"),
		PartitionNanos:        r.Counter("engine_partition_nanos_total"),
		BetweennessNanos:      r.Counter("engine_betweenness_nanos_total"),
		DijkstraNanos:         r.Counter("engine_dijkstra_nanos_total"),
		LayerBetweennessNanos: r.Histogram("engine_layer_betweenness_nanos"),
		LayerDijkstraNanos:    r.Histogram("engine_layer_dijkstra_nanos"),
		DijkstraRuns:          r.Counter("engine_dijkstra_runs_total"),
		EscapeFallbacks:       r.Counter("engine_escape_fallbacks_total"),
		IslandsResolved:       r.Counter("engine_islands_resolved_total"),
		ShortcutTakes:         r.Counter("engine_shortcut_takes_total"),
		BlockedEncounters:     r.Counter("engine_blocked_encounters_total"),
		CycleSearches:         r.Counter("engine_cycle_searches_total"),
		EdgesBlocked:          r.Counter("engine_edges_blocked_total"),
		EdgeUses:              r.Counter("engine_edge_uses_total"),
		Events:                r.Ring(),
	}
}

// FabricMetrics instruments the online fabric manager (internal/fabric).
type FabricMetrics struct {
	// EventsApplied counts Apply calls that published a new epoch; NoOps
	// those that changed nothing; Errors failed reconfigurations.
	EventsApplied, NoOps, Errors *Counter
	// RepairedDests and UnreachableDests aggregate per-event repair
	// outcomes; RepairScope is the distribution of repaired destinations
	// per event (the issue's "repair scope histogram").
	RepairedDests, UnreachableDests *Counter
	RepairScope                     *Histogram
	// LayerRebuilds and FullRecomputes count the incremental→layer→full
	// repair widenings.
	LayerRebuilds, FullRecomputes *Counter
	// SeededChannels and SeededDeps count old-configuration dependencies
	// carried into repair CDGs.
	SeededChannels, SeededDeps *Counter
	// EntriesChanged/Added/Removed aggregate table deltas across epochs.
	EntriesChanged, EntriesAdded, EntriesRemoved *Counter
	// PublishNanos is the epoch publish latency distribution (repair +
	// verification + snapshot installation).
	PublishNanos *Histogram
	// Epoch mirrors the currently published epoch.
	Epoch *Gauge
	// Events receives one "fabric_event" entry per applied event.
	Events *Ring
}

// Fabric returns the fabric bundle registered under fabric_* names (nil,
// all-no-op, on a nil registry).
func (r *Registry) Fabric() *FabricMetrics {
	if r == nil {
		return nil
	}
	return &FabricMetrics{
		EventsApplied:    r.Counter("fabric_events_applied_total"),
		NoOps:            r.Counter("fabric_events_noop_total"),
		Errors:           r.Counter("fabric_events_failed_total"),
		RepairedDests:    r.Counter("fabric_repaired_dests_total"),
		UnreachableDests: r.Counter("fabric_unreachable_dests_total"),
		RepairScope:      r.Histogram("fabric_repair_scope_dests"),
		LayerRebuilds:    r.Counter("fabric_layer_rebuilds_total"),
		FullRecomputes:   r.Counter("fabric_full_recomputes_total"),
		SeededChannels:   r.Counter("fabric_seeded_channels_total"),
		SeededDeps:       r.Counter("fabric_seeded_deps_total"),
		EntriesChanged:   r.Counter("fabric_table_entries_changed_total"),
		EntriesAdded:     r.Counter("fabric_table_entries_added_total"),
		EntriesRemoved:   r.Counter("fabric_table_entries_removed_total"),
		PublishNanos:     r.Histogram("fabric_epoch_publish_nanos"),
		Epoch:            r.Gauge("fabric_epoch"),
		Events:           r.Ring(),
	}
}

// DistribMetrics instruments the forwarding-plane distribution source
// (internal/distrib): the comms, robustness and install-ordering layer
// between the fabric manager and the switch-agent fleet.
type DistribMetrics struct {
	// EpochsPublished counts epochs handed to the source; RoundsStarted
	// distribution rounds begun; EpochsCommitted rounds that reached the
	// fleet-wide commit barrier.
	EpochsPublished, RoundsStarted, EpochsCommitted *Counter
	// TransitionsCertified counts rounds whose union state the oracle
	// certified; DrainFallbacks rounds that had to drain the fleet
	// because the union was refuted (or no certifier was wired).
	TransitionsCertified, DrainFallbacks *Counter
	// FramesSent and BytesSent aggregate the wire traffic pushed to
	// agents; EpochBytes is the per-agent bytes-per-epoch distribution.
	FramesSent, BytesSent *Counter
	EpochBytes            *Histogram
	// DeltaPermille is the per-push ratio of delta-encoded bytes to the
	// full-snapshot size of the same tables, in permille (1000 = no
	// saving); FullSyncs counts pushes that fell back to a full
	// snapshot (new agent, stale base, or a NAK re-sync).
	DeltaPermille *Histogram
	FullSyncs     *Counter
	// PrepareNanos is the per-agent prepare round-trip latency (the
	// fanout latency histogram); BarrierNanos the whole-fleet
	// prepare-barrier latency; CommitNanos the commit-phase latency.
	PrepareNanos, BarrierNanos, CommitNanos *Histogram
	// Retries counts per-agent resend attempts; Naks checksum or
	// base-mismatch rejections received from agents.
	Retries, Naks *Counter
	// AgentsConnected tracks the live fleet size; Quarantined the
	// stragglers currently excluded from the ack barrier.
	AgentsConnected, Quarantined *Gauge
	// FleetEpoch mirrors the last fleet-committed epoch.
	FleetEpoch *Gauge
	// Events receives one "distrib_round" entry per distribution round.
	Events *Ring
}

// Distrib returns the distribution bundle registered under distrib_*
// names (nil, all-no-op, on a nil registry).
func (r *Registry) Distrib() *DistribMetrics {
	if r == nil {
		return nil
	}
	return &DistribMetrics{
		EpochsPublished:      r.Counter("distrib_epochs_published_total"),
		RoundsStarted:        r.Counter("distrib_rounds_started_total"),
		EpochsCommitted:      r.Counter("distrib_epochs_committed_total"),
		TransitionsCertified: r.Counter("distrib_transitions_certified_total"),
		DrainFallbacks:       r.Counter("distrib_drain_fallbacks_total"),
		FramesSent:           r.Counter("distrib_frames_sent_total"),
		BytesSent:            r.Counter("distrib_bytes_sent_total"),
		EpochBytes:           r.Histogram("distrib_epoch_bytes"),
		DeltaPermille:        r.Histogram("distrib_delta_permille"),
		FullSyncs:            r.Counter("distrib_full_syncs_total"),
		PrepareNanos:         r.Histogram("distrib_prepare_nanos"),
		BarrierNanos:         r.Histogram("distrib_barrier_nanos"),
		CommitNanos:          r.Histogram("distrib_commit_nanos"),
		Retries:              r.Counter("distrib_retries_total"),
		Naks:                 r.Counter("distrib_naks_total"),
		AgentsConnected:      r.Gauge("distrib_agents_connected"),
		Quarantined:          r.Gauge("distrib_agents_quarantined"),
		FleetEpoch:           r.Gauge("distrib_fleet_epoch"),
		Events:               r.Ring(),
	}
}

// McastMetrics instruments the multicast subsystem (internal/mcast):
// cast-tree construction inside the complete CDG and the UBM fallback.
type McastMetrics struct {
	// Builds counts tree-construction passes; GroupsRouted the groups
	// routed across them (a rebuild counts its groups again).
	Builds, GroupsRouted *Counter
	// TreeEdges counts committed cast out-channels (branches plus
	// ejections); TDeps and VDeps the committed tree and
	// branch-contention dependencies.
	TreeEdges, TDeps, VDeps *Counter
	// DepsBlocked counts dependency admissions the union cycle check
	// refused; Retries member attachment attempts restarted after a
	// blocked dependency.
	DepsBlocked, Retries *Counter
	// UBMMembers counts members served by serialized unicast legs;
	// UnroutedMembers members unreachable by any path.
	UBMMembers, UnroutedMembers *Counter
	// BuildNanos is the per-build wall-time distribution.
	BuildNanos *Histogram
	// Events receives one "mcast_build" entry per construction pass.
	Events *Ring
}

// Mcast returns the multicast bundle registered under mcast_* names
// (nil, all-no-op, on a nil registry).
func (r *Registry) Mcast() *McastMetrics {
	if r == nil {
		return nil
	}
	return &McastMetrics{
		Builds:          r.Counter("mcast_builds_total"),
		GroupsRouted:    r.Counter("mcast_groups_routed_total"),
		TreeEdges:       r.Counter("mcast_tree_edges_total"),
		TDeps:           r.Counter("mcast_tdeps_total"),
		VDeps:           r.Counter("mcast_vdeps_total"),
		DepsBlocked:     r.Counter("mcast_deps_blocked_total"),
		Retries:         r.Counter("mcast_attach_retries_total"),
		UBMMembers:      r.Counter("mcast_ubm_members_total"),
		UnroutedMembers: r.Counter("mcast_unrouted_members_total"),
		BuildNanos:      r.Histogram("mcast_build_nanos"),
		Events:          r.Ring(),
	}
}

// MaxTrackedVCs bounds the per-VC gauge vector of the simulator bundle;
// virtual lanes beyond it fold into the last gauge.
const MaxTrackedVCs = 16

// SimMetrics instruments the flit-level simulator (internal/sim).
type SimMetrics struct {
	// Runs counts simulation runs; Deadlocks runs that wedged; Timeouts
	// runs that exceeded MaxCycles.
	Runs, Deadlocks, Timeouts *Counter
	// FlitsInjected counts payload flits whose packet entered the
	// network (first transmission on the injection channel);
	// FlitsDelivered flits that reached their destination terminal;
	// FlitsInFlight is the stranded in-network flit count measured by
	// the final sweep of the last run (injected == delivered + in-flight
	// is the invariant the consistency tests pin).
	FlitsInjected, FlitsDelivered *Counter
	FlitsInFlight                 *Gauge
	// FlitsReplicated counts the extra flit copies created at cast-tree
	// branch switches (a k-way replication of an f-flit packet adds
	// (k-1)*f); the multicast conservation invariant is injected +
	// replicated == delivered + in-flight.
	FlitsReplicated *Counter
	// MessagesDelivered counts fully delivered messages.
	MessagesDelivered *Counter
	// StallCycles accumulates cycles in-network packets spent waiting
	// for an output channel or downstream credit; CreditStalls counts
	// transmission attempts refused for lack of buffer credit.
	StallCycles, CreditStalls *Counter
	// DeadlockSweeps counts deadlock-detector sweeps (the detector runs
	// whenever the event queue drains with traffic outstanding); sweeps
	// that confirm a wedged network increment Deadlocks.
	DeadlockSweeps *Counter
	// QueueHWM[vl] is the high-water mark of any single (channel, VL)
	// input-buffer queue depth (in packets) observed on virtual lane vl.
	QueueHWM [MaxTrackedVCs]*Gauge
	// Events receives "sim_run" and "sim_deadlock" entries.
	Events *Ring
}

// Sim returns the simulator bundle registered under sim_* names (nil,
// all-no-op, on a nil registry).
func (r *Registry) Sim() *SimMetrics {
	if r == nil {
		return nil
	}
	m := &SimMetrics{
		Runs:              r.Counter("sim_runs_total"),
		Deadlocks:         r.Counter("sim_deadlock_detected"),
		Timeouts:          r.Counter("sim_timeouts_total"),
		FlitsInjected:     r.Counter("sim_flits_injected_total"),
		FlitsDelivered:    r.Counter("sim_flits_delivered_total"),
		FlitsReplicated:   r.Counter("sim_flits_replicated_total"),
		FlitsInFlight:     r.Gauge("sim_flits_in_flight"),
		MessagesDelivered: r.Counter("sim_messages_delivered_total"),
		StallCycles:       r.Counter("sim_stall_cycles_total"),
		CreditStalls:      r.Counter("sim_credit_stalls_total"),
		DeadlockSweeps:    r.Counter("sim_deadlock_sweeps_total"),
		Events:            r.Ring(),
	}
	for vl := 0; vl < MaxTrackedVCs; vl++ {
		m.QueueHWM[vl] = r.Gauge("sim_vc_queue_depth_hwm_vc" + strconv.Itoa(vl))
	}
	return m
}

// QueueHWMFor returns the queue high-water gauge of virtual lane vl,
// folding out-of-range lanes into the last tracked gauge. Nil-safe.
func (m *SimMetrics) QueueHWMFor(vl int) *Gauge {
	if m == nil {
		return nil
	}
	if vl < 0 {
		vl = 0
	}
	if vl >= MaxTrackedVCs {
		vl = MaxTrackedVCs - 1
	}
	return m.QueueHWM[vl]
}

// WorkloadMetrics instruments the trace-driven workload layer
// (internal/workload generators and traces, the internal/flowsim fluid
// simulator, and cmd/nueload).
type WorkloadMetrics struct {
	// Runs counts fluid-simulation runs; Timeouts runs cut by MaxTicks.
	Runs, Timeouts *Counter
	// FlowsGenerated counts flows emitted by workload generators;
	// FlowsFinished flows the fluid simulator completed; FlowsSkipped
	// flows dropped before simulation (self-loops, disconnected
	// endpoints).
	FlowsGenerated, FlowsFinished, FlowsSkipped *Counter
	// FlowsActive is the high-water mark of concurrently active flows
	// across recomputes.
	FlowsActive *Gauge
	// EventsProcessed counts arrivals + finishes; RateRecomputes the
	// progressive-filling max-min recomputations (event rate =
	// EventsProcessed / RunNanos).
	EventsProcessed, RateRecomputes *Counter
	// RunNanos accumulates fluid-simulation wall time.
	RunNanos *Counter
	// TraceBytesWritten and TraceBytesRead aggregate binary-trace I/O.
	TraceBytesWritten, TraceBytesRead *Counter
	// Events receives one "flowsim_run" entry per run.
	Events *Ring
}

// Workload returns the workload bundle registered under workload_*
// names (nil, all-no-op, on a nil registry).
func (r *Registry) Workload() *WorkloadMetrics {
	if r == nil {
		return nil
	}
	return &WorkloadMetrics{
		Runs:              r.Counter("workload_runs_total"),
		Timeouts:          r.Counter("workload_timeouts_total"),
		FlowsGenerated:    r.Counter("workload_flows_generated_total"),
		FlowsFinished:     r.Counter("workload_flows_finished_total"),
		FlowsSkipped:      r.Counter("workload_flows_skipped_total"),
		FlowsActive:       r.Gauge("workload_flows_active_hwm"),
		EventsProcessed:   r.Counter("workload_events_processed_total"),
		RateRecomputes:    r.Counter("workload_rate_recomputes_total"),
		RunNanos:          r.Counter("workload_run_nanos_total"),
		TraceBytesWritten: r.Counter("workload_trace_bytes_written_total"),
		TraceBytesRead:    r.Counter("workload_trace_bytes_read_total"),
		Events:            r.Ring(),
	}
}

// ShardMetrics instruments the sharded, replicated control plane
// (internal/shard): region-local vs escalated repair scheduling, seam
// certification, leadership churn and replicated-log outcomes.
type ShardMetrics struct {
	// LocalJobs counts layer repairs scheduled on their home region's
	// shard; SeamJobs those escalated to the coordinator because the
	// dependency change crossed a region boundary.
	LocalJobs, SeamJobs *Counter
	// SeamCertified counts cross-region certifications run; SeamVetoes
	// those where the oracle refuted the proposed tables themselves (the
	// proposal was discarded and recovered via full recompute); SeamDrains
	// those where only the old+new union was refuted, so the tables stand
	// but the swap must be drained.
	SeamCertified, SeamVetoes, SeamDrains *Counter
	// EpochsCommitted counts epochs the replicated log accepted with a
	// quorum; Deposed counts appends/elections lost to a newer term.
	EpochsCommitted, Deposed *Counter
	// Elections counts leadership changes; Term and Leader mirror the
	// current term and leader replica (-1 when none).
	Elections    *Counter
	Term, Leader *Gauge
	// Events receives one "shard_epoch" entry per committed epoch.
	Events *Ring
}

// Shard returns the shard-control-plane bundle registered under shard_*
// names (nil, all-no-op, on a nil registry).
func (r *Registry) Shard() *ShardMetrics {
	if r == nil {
		return nil
	}
	return &ShardMetrics{
		LocalJobs:       r.Counter("shard_local_jobs_total"),
		SeamJobs:        r.Counter("shard_seam_jobs_total"),
		SeamCertified:   r.Counter("shard_seam_certified_total"),
		SeamVetoes:      r.Counter("shard_seam_vetoes_total"),
		SeamDrains:      r.Counter("shard_seam_drains_total"),
		EpochsCommitted: r.Counter("shard_epochs_committed_total"),
		Deposed:         r.Counter("shard_deposed_total"),
		Elections:       r.Counter("shard_elections_total"),
		Term:            r.Gauge("shard_term"),
		Leader:          r.Gauge("shard_leader"),
		Events:          r.Ring(),
	}
}
