// Package telemetry is a zero-dependency, low-overhead runtime
// instrumentation layer for the routing engine, the fabric manager and
// the flit simulator: atomic counters, gauges (with high-water-mark
// updates), fixed-bucket histograms, and a bounded structured event ring.
//
// Design contract (see DESIGN.md §10):
//
//   - Every handle is nil-safe: all methods on a nil *Counter, *Gauge,
//     *Histogram, *Ring or *Registry are no-ops, so instrumented code
//     carries a single pointer that is nil when telemetry is off and
//     never branches beyond the receiver check. Routing output is
//     bit-identical with telemetry on and off (telemetry only observes).
//   - All handles are safe for concurrent use; hot paths accumulate
//     locally and publish once per phase where possible.
//   - Exposition is pull-based: Snapshot() for tests and JSON dumps,
//     WritePrometheus() for a /metrics endpoint.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v    atomic.Int64
	name string
}

// Add increments the counter by d. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on a nil receiver).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value with a monotonic-max update for
// high-water marks.
type Gauge struct {
	v    atomic.Int64
	name string
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d (may be negative). No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// SetMax raises the gauge to v if v is larger (lock-free high-water
// mark). No-op on a nil receiver.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value (0 on a nil receiver).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramBuckets is the number of exponential buckets: bucket i counts
// observations v with 2^(i-1) < v <= 2^i (bucket 0: v <= 1), the last
// bucket is a catch-all. Powers of two cover 1 ns .. ~34 s latencies and
// 1 .. 2^30 count-valued observations alike.
const HistogramBuckets = 36

// Histogram is a fixed-bucket exponential histogram over non-negative
// int64 observations (nanoseconds, destination counts, queue depths).
type Histogram struct {
	name    string
	buckets [HistogramBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
}

// bucketIndex returns the bucket for observation v.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := 0
	// Smallest i with v <= 2^i.
	for b := int64(1); b < v && i < HistogramBuckets-1; b <<= 1 {
		i++
	}
	return i
}

// Observe records one observation. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.max.SetMax(v)
}

// ObserveSince records the elapsed nanoseconds since start. No-op on a
// nil receiver (and then never calls time.Now).
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation (0 on a nil receiver).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Event is one structured entry of the bounded event ring.
type Event struct {
	// Seq is a global monotonically increasing sequence number; rings
	// overwrite oldest-first, so gaps in Seq reveal dropped events.
	Seq uint64 `json:"seq"`
	// UnixNanos is the wall-clock emission time.
	UnixNanos int64 `json:"unix_nanos"`
	// Kind names the event (e.g. "engine_layer", "sim_deadlock").
	Kind string `json:"kind"`
	// Fields carries the event's integer payload.
	Fields map[string]int64 `json:"fields"`
}

// Ring is a bounded, concurrency-safe ring of structured events. When
// full, the oldest event is overwritten.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever emitted
	size int
}

// Emit appends an event, overwriting the oldest when the ring is full.
// The fields map is retained; callers must not reuse it. No-op on a nil
// receiver (and then allocates nothing).
func (r *Ring) Emit(kind string, fields map[string]int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := Event{Seq: r.next, UnixNanos: time.Now().UnixNano(), Kind: kind, Fields: fields}
	if len(r.buf) < r.size {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next%uint64(r.size)] = e
	}
	r.next++
	r.mu.Unlock()
}

// Events returns the buffered events in emission order (nil on a nil
// receiver). The result is a copy.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < r.size {
		out = append(out, r.buf...)
	} else {
		at := r.next % uint64(r.size)
		out = append(out, r.buf[at:]...)
		out = append(out, r.buf[:at]...)
	}
	return out
}

// Dropped returns how many events were overwritten (0 on nil).
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < r.size {
		return 0
	}
	return r.next - uint64(r.size)
}

// Registry owns a namespace of metrics. The zero value is not usable;
// call New. A nil *Registry hands out nil handles, so a single nil check
// at setup time turns the entire instrumentation off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	ring     *Ring
}

// DefaultRingSize bounds the structured event ring.
const DefaultRingSize = 1024

// New returns an empty registry with a DefaultRingSize event ring.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ring:     &Ring{size: DefaultRingSize},
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Ring returns the registry's event ring (nil on a nil registry).
func (r *Registry) Ring() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	// Buckets maps upper bound (2^i) to cumulative count, sparse (only
	// non-empty buckets), Prometheus "le" semantics.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot is a consistent-enough point-in-time copy of a registry: each
// value is read atomically (the set of values is not frozen as one
// transaction, which is the standard contract of scrape-based metrics).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Events     []Event                      `json:"events,omitempty"`
	// DroppedEvents counts ring overwrites.
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

// Snapshot exports all metrics. On a nil registry it returns an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, c := range counters {
		s.Counters[c.name] = c.Load()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Load()
	}
	for _, h := range hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Max: h.Max()}
		cum := int64(0)
		for i := 0; i < HistogramBuckets; i++ {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			if hs.Buckets == nil {
				hs.Buckets = map[string]int64{}
			}
			hs.Buckets[bucketLabel(i)] = cum
		}
		s.Histograms[h.name] = hs
	}
	s.Events = r.ring.Events()
	s.DroppedEvents = r.ring.Dropped()
	return s
}

// sortedNames returns the keys of a map in lexical order (deterministic
// exposition).
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
