package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every handle method must be a no-op (not a panic) on a
// nil receiver — this is the zero-overhead-when-off contract that lets
// instrumented code carry a single possibly-nil pointer.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Load() != 0 {
		t.Error("nil counter Load != 0")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	g.SetMax(7)
	if g.Load() != 0 {
		t.Error("nil gauge Load != 0")
	}
	var h *Histogram
	h.Observe(4)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Error("nil histogram not empty")
	}
	var r *Ring
	r.Emit("kind", map[string]int64{"a": 1})
	if r.Events() != nil || r.Dropped() != 0 {
		t.Error("nil ring not empty")
	}

	var reg *Registry
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x") != nil || reg.Ring() != nil {
		t.Error("nil registry handed out non-nil handles")
	}
	if reg.Engine() != nil || reg.Fabric() != nil || reg.Sim() != nil {
		t.Error("nil registry handed out non-nil bundles")
	}
	var sm *SimMetrics
	if sm.QueueHWMFor(3) != nil {
		t.Error("nil SimMetrics.QueueHWMFor != nil")
	}
	s := reg.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	// Nil-bundle recording, as instrumented code does it.
	var em *EngineMetrics
	_ = em // bundles are plain structs; their nil handles are covered above
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(4)
	c.Inc()
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("same name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	g.SetMax(5) // below current: no change
	if g.Load() != 7 {
		t.Error("SetMax lowered the gauge")
	}
	g.SetMax(12)
	if g.Load() != 12 {
		t.Error("SetMax did not raise the gauge")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 1010 { // -5 clamps to 0
		t.Errorf("sum = %d, want 1010", h.Sum())
	}
	if h.Max() != 1000 {
		t.Errorf("max = %d, want 1000", h.Max())
	}
	snap := r.Snapshot().Histograms["h"]
	// le="1": observations <= 1 are 0, 1, -5 (clamped).
	if snap.Buckets["1"] != 3 {
		t.Errorf(`bucket le="1" = %d, want 3`, snap.Buckets["1"])
	}
	// le="2" adds the single 2; le="4" adds 3 and 4.
	if snap.Buckets["2"] != 4 || snap.Buckets["4"] != 6 {
		t.Errorf(`buckets le=2/4 = %d/%d, want 4/6`, snap.Buckets["2"], snap.Buckets["4"])
	}
	// 1000 lands in le="1024"; cumulative now covers everything.
	if snap.Buckets["1024"] != 7 {
		t.Errorf(`bucket le="1024" = %d, want 7`, snap.Buckets["1024"])
	}
}

func TestRingBoundsAndSeq(t *testing.T) {
	r := &Ring{size: 4}
	for i := 0; i < 10; i++ {
		r.Emit("e", map[string]int64{"i": int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Oldest-first emission order with contiguous Seq 6..9.
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("event %d Seq = %d, want %d", i, e.Seq, want)
		}
		if e.Fields["i"] != int64(6+i) {
			t.Errorf("event %d payload = %d, want %d", i, e.Fields["i"], 6+i)
		}
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("g").Set(9)
	h := r.Histogram("lat")
	h.Observe(3)
	h.Observe(100)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 1\n",
		"# TYPE b_total counter\nb_total 2\n",
		"# TYPE g gauge\ng 9\n",
		"# TYPE lat histogram\n",
		`lat_bucket{le="4"} 1`,
		`lat_bucket{le="128"} 2`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 103\nlat_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Lexical family order: a_total before b_total.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Error("metric families not in lexical order")
	}
}

// TestSnapshotSubsystems: the pre-wired bundles register under their
// documented names and Snapshot reflects recorded values.
func TestSnapshotSubsystems(t *testing.T) {
	r := New()
	em, fm, sm := r.Engine(), r.Fabric(), r.Sim()
	em.DijkstraRuns.Add(11)
	fm.EventsApplied.Inc()
	fm.Epoch.Set(3)
	sm.Deadlocks.Inc()
	sm.QueueHWMFor(2).SetMax(6)
	sm.QueueHWMFor(MaxTrackedVCs + 5).SetMax(9) // folds into the last lane
	sm.Events.Emit("sim_deadlock", map[string]int64{"cycles": 42})

	s := r.Snapshot()
	if s.Counters["engine_dijkstra_runs_total"] != 11 {
		t.Error("engine_dijkstra_runs_total not in snapshot")
	}
	if s.Counters["fabric_events_applied_total"] != 1 || s.Gauges["fabric_epoch"] != 3 {
		t.Error("fabric counters not in snapshot")
	}
	if s.Counters["sim_deadlock_detected"] != 1 {
		t.Error("sim_deadlock_detected not in snapshot")
	}
	if s.Gauges["sim_vc_queue_depth_hwm_vc2"] != 6 {
		t.Error("per-VC HWM gauge not in snapshot")
	}
	if s.Gauges["sim_vc_queue_depth_hwm_vc15"] != 9 {
		t.Error("out-of-range lane did not fold into the last gauge")
	}
	if len(s.Events) != 1 || s.Events[0].Kind != "sim_deadlock" {
		t.Error("ring event not in snapshot")
	}
}

// TestConcurrency hammers one registry from many goroutines; run under
// -race this is the data-race certification of the handle types.
func TestConcurrency(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	ring := r.Ring()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(int64(i))
				if i%100 == 0 {
					ring.Emit("tick", map[string]int64{"w": int64(w)})
				}
				r.Counter("c2").Inc() // registry map access race check
			}
		}(w)
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Errorf("counter = %d, want %d", c.Load(), workers*per)
	}
	if r.Counter("c2").Load() != workers*per {
		t.Errorf("c2 = %d, want %d", r.Counter("c2").Load(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if g.Load() != workers*per-1 {
		t.Errorf("gauge hwm = %d, want %d", g.Load(), workers*per-1)
	}
	_ = r.Snapshot()
}

func TestDistribBundle(t *testing.T) {
	var nilReg *Registry
	if dm := nilReg.Distrib(); dm != nil {
		t.Fatal("nil registry handed out a live distrib bundle")
	}
	var off DistribMetrics // zero bundle: every handle is a nil-safe no-op
	off.EpochsCommitted.Inc()
	off.PrepareNanos.Observe(5)
	off.Quarantined.Set(1)

	r := New()
	dm := r.Distrib()
	dm.EpochsCommitted.Inc()
	dm.DrainFallbacks.Add(2)
	dm.DeltaPermille.Observe(120)
	dm.Quarantined.Set(3)
	dm.FleetEpoch.Set(7)
	s := r.Snapshot()
	if s.Counters["distrib_epochs_committed_total"] != 1 ||
		s.Counters["distrib_drain_fallbacks_total"] != 2 {
		t.Error("distrib counters not in snapshot")
	}
	if s.Histograms["distrib_delta_permille"].Count != 1 {
		t.Error("distrib_delta_permille not in snapshot")
	}
	if s.Gauges["distrib_agents_quarantined"] != 3 || s.Gauges["distrib_fleet_epoch"] != 7 {
		t.Error("distrib gauges not in snapshot")
	}
}
