package topology

import (
	"fmt"

	"repro/internal/graph"
)

// Dragonfly builds a dragonfly network after Kim et al.: g groups of a
// switches, each switch with p terminals and h global links; switches
// within a group form a complete graph. Every unordered pair of groups is
// connected by floor(a*h/(g-1)) parallel global links (uniform global link
// arrangement), endpoints spread round-robin over the groups' switches.
//
// The paper's configuration is Dragonfly(12, 6, 6, 15): 180 switches,
// 1,080 terminals (Table 1).
func Dragonfly(a, p, h, g int) *Topology {
	if a < 2 || g < 2 || h < 1 {
		panic("topology: dragonfly needs a >= 2, g >= 2, h >= 1")
	}
	b := graph.NewBuilder()
	sw := make([][]graph.NodeID, g)
	for q := 0; q < g; q++ {
		sw[q] = make([]graph.NodeID, a)
		for i := 0; i < a; i++ {
			sw[q][i] = b.AddSwitch(fmt.Sprintf("g%d-s%d", q, i))
		}
	}
	// Intra-group complete graphs.
	for q := 0; q < g; q++ {
		for i := 0; i < a; i++ {
			for j := i + 1; j < a; j++ {
				b.AddLink(sw[q][i], sw[q][j])
			}
		}
	}
	// Global links: every unordered group pair receives
	// floor(a*h/(g-1)) parallel links, endpoints assigned round-robin over
	// the groups' global ports (h consecutive ports per switch). For the
	// paper's configuration this yields 525 global links and exactly the
	// 1,515 switch-to-switch channels of Table 1; a few ports per group
	// stay unused when a*h is not divisible by g-1, as on real systems.
	linksPerPair := (a * h) / (g - 1)
	if linksPerPair < 1 {
		linksPerPair = 1
	}
	port := make([]int, g) // next free global port per group
	take := func(q int) graph.NodeID {
		s := sw[q][(port[q]/h)%a]
		port[q]++
		return s
	}
	for q1 := 0; q1 < g; q1++ {
		for q2 := q1 + 1; q2 < g; q2++ {
			for l := 0; l < linksPerPair; l++ {
				b.AddLink(take(q1), take(q2))
			}
		}
	}
	var all []graph.NodeID
	for q := 0; q < g; q++ {
		all = append(all, sw[q]...)
	}
	addTerminals(b, all, p)
	return &Topology{
		Net:  b.MustBuild(),
		Name: fmt.Sprintf("dragonfly-a%d-p%d-h%d-g%d", a, p, h, g),
	}
}

// Cascade2Group builds a Cray Cascade-like network with two electrical
// groups. Each group is a 16x6 flattened butterfly of Aries-like switches:
// all-to-all in each row of 16 (single links) and all-to-all in each
// column of 6 with 3 parallel links. 192 global links connect the two
// groups, distributed round-robin over the switches. Every switch carries
// 8 terminals. Counts match Table 1: 192 switches, 1,536 terminals, 3,072
// switch-to-switch links.
func Cascade2Group() *Topology {
	const (
		rows      = 6  // chassis per group
		cols      = 16 // blades per chassis
		groups    = 2
		globals   = 192
		terminals = 8
	)
	b := graph.NewBuilder()
	sw := make([][][]graph.NodeID, groups) // [group][row][col]
	for q := 0; q < groups; q++ {
		sw[q] = make([][]graph.NodeID, rows)
		for r := 0; r < rows; r++ {
			sw[q][r] = make([]graph.NodeID, cols)
			for c := 0; c < cols; c++ {
				sw[q][r][c] = b.AddSwitch(fmt.Sprintf("g%d-c%d-b%d", q, r, c))
			}
		}
	}
	for q := 0; q < groups; q++ {
		// Row (intra-chassis backplane) links: single.
		for r := 0; r < rows; r++ {
			for c1 := 0; c1 < cols; c1++ {
				for c2 := c1 + 1; c2 < cols; c2++ {
					b.AddLink(sw[q][r][c1], sw[q][r][c2])
				}
			}
		}
		// Column (inter-chassis cable) links: 3 parallel.
		for c := 0; c < cols; c++ {
			for r1 := 0; r1 < rows; r1++ {
				for r2 := r1 + 1; r2 < rows; r2++ {
					for k := 0; k < 3; k++ {
						b.AddLink(sw[q][r1][c], sw[q][r2][c])
					}
				}
			}
		}
	}
	// Global optical links between the two groups, round-robin.
	perGroup := rows * cols
	for i := 0; i < globals; i++ {
		s0 := sw[0][(i/cols)%rows][i%cols]
		j := i + perGroup/2 // offset pairing to avoid pure identity wiring
		s1 := sw[1][(j/cols)%rows][j%cols]
		b.AddLink(s0, s1)
	}
	var all []graph.NodeID
	for q := 0; q < groups; q++ {
		for r := 0; r < rows; r++ {
			all = append(all, sw[q][r]...)
		}
	}
	addTerminals(b, all, terminals)
	return &Topology{Net: b.MustBuild(), Name: "cascade-2group"}
}
