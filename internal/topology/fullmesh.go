package topology

import (
	"fmt"

	"repro/internal/graph"
)

// MeshMeta describes an all-to-all (full-mesh) switch fabric: every
// pair of switches shares a direct duplex link (until faults remove
// some). The VC-free full-mesh router needs a total order on the
// switches to keep its non-minimal paths monotone.
type MeshMeta struct {
	// Rank is the switch's position in the total order (dense 0..n-1).
	// Switches not part of the mesh (none, today) have no entry.
	Rank map[graph.NodeID]int
	// Switches lists the mesh switches in rank order.
	Switches []graph.NodeID
}

// FullMesh builds a complete graph of n switches (every pair directly
// linked) with t terminals per switch — the intra-group fabric of a
// Dragonfly router group, and the topology family of the HOTI'25
// VC-free routing scenario.
func FullMesh(n, t int) *Topology {
	tp := fullMesh(n, t)
	tp.Name = fmt.Sprintf("fullmesh-%d", n)
	return tp
}

// DragonflyGroup builds one Dragonfly router group in isolation: a
// full mesh of a switches with p terminals each (the global ports are
// unused when the group stands alone). It carries the same MeshMeta as
// FullMesh, so the VC-free full-mesh router applies.
func DragonflyGroup(a, p int) *Topology {
	tp := fullMesh(a, p)
	tp.Name = fmt.Sprintf("dfgroup-a%d-p%d", a, p)
	return tp
}

func fullMesh(n, t int) *Topology {
	if n < 2 {
		panic("topology: full mesh needs >= 2 switches")
	}
	b := graph.NewBuilder()
	meta := &MeshMeta{Rank: make(map[graph.NodeID]int, n)}
	sw := make([]graph.NodeID, n)
	for i := range sw {
		sw[i] = b.AddSwitch(fmt.Sprintf("m%d", i))
		meta.Rank[sw[i]] = i
	}
	meta.Switches = sw
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddLink(sw[i], sw[j])
		}
	}
	addTerminals(b, sw, t)
	return &Topology{Net: b.MustBuild(), Mesh: meta}
}
