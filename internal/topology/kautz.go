package topology

import (
	"fmt"

	"repro/internal/graph"
)

// Kautz builds the undirected network derived from the Kautz digraph
// K(b, k): vertices are length-k strings over an alphabet of b+1 symbols
// with no two consecutive symbols equal ((b+1)*b^(k-1) vertices), and each
// directed edge u -> v becomes one duplex link, repeated r times
// (redundancy). Each switch carries t terminals.
//
// The paper's Kautz configuration (Table 1: 150 switches, 1,050 terminals,
// 1,500 links, r=2) is Kautz(5, 3, 7, 2).
func Kautz(b, k, t, r int) *Topology {
	if b < 2 || k < 2 {
		panic("topology: Kautz needs b >= 2, k >= 2")
	}
	bl := graph.NewBuilder()
	// Enumerate vertices: strings s[0..k-1], s[i] in [0,b], s[i] != s[i+1].
	var verts [][]int
	var rec func(prefix []int)
	rec = func(prefix []int) {
		if len(prefix) == k {
			verts = append(verts, append([]int(nil), prefix...))
			return
		}
		for s := 0; s <= b; s++ {
			if len(prefix) > 0 && prefix[len(prefix)-1] == s {
				continue
			}
			rec(append(prefix, s))
		}
	}
	rec(nil)
	index := make(map[string]int, len(verts))
	key := func(v []int) string { return fmt.Sprint(v) }
	sw := make([]graph.NodeID, len(verts))
	for i, v := range verts {
		index[key(v)] = i
		sw[i] = bl.AddSwitch(fmt.Sprintf("kz%v", v))
	}
	// Directed edges u=s0..s(k-1) -> v=s1..s(k-1),x for x != s(k-1).
	for i, v := range verts {
		shifted := append(append([]int(nil), v[1:]...), 0)
		for x := 0; x <= b; x++ {
			if x == v[k-1] {
				continue
			}
			shifted[k-1] = x
			j := index[key(shifted)]
			for rep := 0; rep < r; rep++ {
				bl.AddLink(sw[i], sw[j])
			}
		}
	}
	addTerminals(bl, sw, t)
	return &Topology{
		Net:  bl.MustBuild(),
		Name: fmt.Sprintf("kautz-b%d-k%d", b, k),
	}
}
