package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// RandomTopology builds a connected random network of the kind used in the
// paper's §5.1: switches interconnected by ssLinks randomly placed
// switch-to-switch duplex links (a random spanning tree guarantees
// connectivity; the remainder is sampled uniformly without self-loops or
// duplicate pairs), with t terminals per switch.
//
// The paper's configuration is RandomTopology(rng, 125, 1000, 8).
func RandomTopology(rng *rand.Rand, switches, ssLinks, t int) *Topology {
	if ssLinks < switches-1 {
		panic("topology: not enough links for a connected network")
	}
	maxPairs := switches * (switches - 1) / 2
	if ssLinks > maxPairs {
		panic("topology: more links than switch pairs")
	}
	b := graph.NewBuilder()
	sw := make([]graph.NodeID, switches)
	for i := range sw {
		sw[i] = b.AddSwitch(fmt.Sprintf("r%d", i))
	}
	used := make(map[[2]int]bool, ssLinks)
	addPair := func(i, j int) bool {
		if i == j {
			return false
		}
		if i > j {
			i, j = j, i
		}
		if used[[2]int{i, j}] {
			return false
		}
		used[[2]int{i, j}] = true
		b.AddLink(sw[i], sw[j])
		return true
	}
	// Random spanning tree via random attachment order.
	perm := rng.Perm(switches)
	for idx := 1; idx < switches; idx++ {
		addPair(perm[idx], perm[rng.Intn(idx)])
	}
	placed := switches - 1
	for placed < ssLinks {
		if addPair(rng.Intn(switches), rng.Intn(switches)) {
			placed++
		}
	}
	addTerminals(b, sw, t)
	return &Topology{Net: b.MustBuild(), Name: fmt.Sprintf("random-%d-%d", switches, ssLinks)}
}

// InjectLinkFailures marks approximately fraction of the switch-to-switch
// duplex links as failed, never disconnecting the network (candidate
// failures that would disconnect it are skipped). It returns the modified
// copy and the number of duplex links actually failed. Terminal links are
// never failed.
func InjectLinkFailures(tp *Topology, rng *rand.Rand, fraction float64) (*Topology, int) {
	g := tp.Net
	var candidates []graph.ChannelID
	for i := 0; i < g.NumChannels(); i += 2 {
		c := g.Channel(graph.ChannelID(i))
		if !c.Failed && g.IsSwitch(c.From) && g.IsSwitch(c.To) {
			candidates = append(candidates, c.ID)
		}
	}
	want := int(float64(len(candidates))*fraction + 0.5)
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	failed := 0
	cur := g
	for _, c := range candidates {
		if failed >= want {
			break
		}
		next := cur.WithoutChannels(c)
		if !graph.Connected(next) {
			continue
		}
		cur = next
		failed++
	}
	ntp := *tp
	ntp.Net = cur
	if failed > 0 {
		ntp.Name = fmt.Sprintf("%s-f%d", tp.Name, failed)
	}
	return &ntp, failed
}

// FailSwitch returns a copy of the topology with the given switch (and its
// attached terminals) disconnected. The paper's Fig. 1 network is a 4x4x3
// torus with one failed switch.
func FailSwitch(tp *Topology, s graph.NodeID) *Topology {
	if !tp.Net.IsSwitch(s) {
		panic("topology: FailSwitch on non-switch")
	}
	ntp := *tp
	ntp.Net = tp.Net.WithoutNodes(s)
	ntp.Name = tp.Name + "-1sw"
	return &ntp
}
