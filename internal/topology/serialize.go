package topology

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// Write serializes a topology in a simple line-oriented text format:
//
//	topo <name>
//	node <id> switch|terminal <name>
//	link <fromID> <toID>
//	mcastgroup <id> <memberID> <memberID>...
//
// Failed channels are omitted, so a round-trip bakes failures in.
// mcastgroup lines carry the multicast workload alongside the topology
// (1-based dense group ids, members are terminal node ids).
func Write(w io.Writer, tp *Topology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "topo %s\n", tp.Name)
	g := tp.Net
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(graph.NodeID(i))
		fmt.Fprintf(bw, "node %d %s %s\n", n.ID, n.Kind, n.Name)
	}
	for i := 0; i < g.NumChannels(); i += 2 {
		c := g.Channel(graph.ChannelID(i))
		if c.Failed {
			continue
		}
		fmt.Fprintf(bw, "link %d %d\n", c.From, c.To)
	}
	for i, members := range tp.Groups {
		fmt.Fprintf(bw, "mcastgroup %d", i+1)
		for _, m := range members {
			fmt.Fprintf(bw, " %d", m)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses the format produced by Write. Torus/tree metadata is not
// serialized; topology-aware routings require generator-built topologies.
func Read(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	b := graph.NewBuilder()
	name := "unnamed"
	var groups [][]graph.NodeID
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "topo":
			if len(fields) >= 2 {
				name = fields[1]
			}
		case "node":
			if len(fields) < 3 {
				return nil, fmt.Errorf("topology: line %d: malformed node", lineNo)
			}
			var id int
			if _, err := fmt.Sscanf(fields[1], "%d", &id); err != nil {
				return nil, fmt.Errorf("topology: line %d: bad node id: %v", lineNo, err)
			}
			if id != b.NumNodes() {
				return nil, fmt.Errorf("topology: line %d: node ids must be dense and ordered (got %d, want %d)",
					lineNo, id, b.NumNodes())
			}
			nodeName := ""
			if len(fields) >= 4 {
				nodeName = fields[3]
			}
			switch fields[2] {
			case "switch":
				b.AddSwitch(nodeName)
			case "terminal":
				b.AddTerminal(nodeName)
			default:
				return nil, fmt.Errorf("topology: line %d: unknown node kind %q", lineNo, fields[2])
			}
		case "link":
			var from, to int
			if len(fields) < 3 {
				return nil, fmt.Errorf("topology: line %d: malformed link", lineNo)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &from); err != nil {
				return nil, fmt.Errorf("topology: line %d: bad link source: %v", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &to); err != nil {
				return nil, fmt.Errorf("topology: line %d: bad link target: %v", lineNo, err)
			}
			if from < 0 || from >= b.NumNodes() || to < 0 || to >= b.NumNodes() {
				return nil, fmt.Errorf("topology: line %d: link endpoint out of range", lineNo)
			}
			b.AddLink(graph.NodeID(from), graph.NodeID(to))
		case "mcastgroup":
			if len(fields) < 3 {
				return nil, fmt.Errorf("topology: line %d: mcastgroup needs an id and at least one member", lineNo)
			}
			var id int
			if _, err := fmt.Sscanf(fields[1], "%d", &id); err != nil {
				return nil, fmt.Errorf("topology: line %d: bad group id: %v", lineNo, err)
			}
			if id != len(groups)+1 {
				return nil, fmt.Errorf("topology: line %d: group ids must be dense and 1-based (got %d, want %d)",
					lineNo, id, len(groups)+1)
			}
			members := make([]graph.NodeID, 0, len(fields)-2)
			for _, f := range fields[2:] {
				var m int
				if _, err := fmt.Sscanf(f, "%d", &m); err != nil {
					return nil, fmt.Errorf("topology: line %d: bad group member: %v", lineNo, err)
				}
				if m < 0 || m >= b.NumNodes() {
					return nil, fmt.Errorf("topology: line %d: group member %d out of range", lineNo, m)
				}
				members = append(members, graph.NodeID(m))
			}
			groups = append(groups, members)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Topology{Net: g, Name: name, Groups: groups}, nil
}
