// Package topology generates the interconnection networks used in the Nue
// paper's evaluation (Table 1): random topologies, 3D tori with link
// redundancy, k-ary n-trees, Kautz graphs, Dragonflies, a Cascade-like
// two-group network and a Tsubame2.5-like fat tree — plus the small worked
// examples from the paper's figures, fault injection, and a text
// serialization format.
package topology

import (
	"fmt"

	"repro/internal/graph"
)

// Topology bundles a network with the metadata some routing algorithms
// need (torus coordinates, tree levels).
type Topology struct {
	Net  *graph.Network
	Name string
	// Torus is non-nil for torus networks; required by the
	// Torus-2QoS-style router.
	Torus *TorusMeta
	// Tree is non-nil for fat-tree-like networks; required by the
	// fat-tree router.
	Tree *TreeMeta
	// Mesh is non-nil for full-mesh (all-to-all) switch fabrics such as
	// single Dragonfly groups; required by the VC-free full-mesh router.
	Mesh *MeshMeta
	// Groups lists multicast group memberships (terminal IDs) carried
	// with the topology; group IDs are the 1-based slice positions.
	// Empty for topologies without a multicast workload.
	Groups [][]graph.NodeID
}

// TorusMeta describes switch placement on a 3D torus or mesh grid.
type TorusMeta struct {
	Dims [3]int
	// Wrap is true for tori (rings close) and false for meshes.
	Wrap bool
	// Coord[switchID] is the (x,y,z) grid position; nodes that are not
	// torus switches have no entry.
	Coord map[graph.NodeID][3]int
	// SwitchAt[x][y][z] is the switch at that position.
	SwitchAt [][][]graph.NodeID
}

// TreeMeta describes levels of a leveled (fat-tree-like) network.
type TreeMeta struct {
	// Level[switchID] = 0 for leaf switches, increasing toward the roots.
	Level map[graph.NodeID]int
	// NumLevels is the number of switch levels.
	NumLevels int
}

// Ring returns a ring of n switches with t terminals attached to each.
func Ring(n, t int) *Topology {
	if n < 3 {
		panic("topology: ring needs >= 3 switches")
	}
	b := graph.NewBuilder()
	sw := make([]graph.NodeID, n)
	for i := range sw {
		sw[i] = b.AddSwitch(fmt.Sprintf("sw%d", i))
	}
	for i := 0; i < n; i++ {
		b.AddLink(sw[i], sw[(i+1)%n])
	}
	addTerminals(b, sw, t)
	return &Topology{Net: b.MustBuild(), Name: fmt.Sprintf("ring-%d", n)}
}

// RingWithShortcut returns the 5-node ring with the n3-n5 shortcut from
// Fig. 2a of the paper. Switch IDs 0..4 correspond to the paper's n1..n5;
// no terminals are attached (the paper's example routes between switches).
func RingWithShortcut() *Topology {
	b := graph.NewBuilder()
	sw := make([]graph.NodeID, 5)
	for i := range sw {
		sw[i] = b.AddSwitch(fmt.Sprintf("n%d", i+1))
	}
	for i := 0; i < 5; i++ {
		b.AddLink(sw[i], sw[(i+1)%5])
	}
	b.AddLink(sw[2], sw[4]) // the n3-n5 shortcut
	return &Topology{Net: b.MustBuild(), Name: "ring5-shortcut"}
}

// addTerminals attaches t terminals to each listed switch.
func addTerminals(b *graph.Builder, switches []graph.NodeID, t int) {
	for _, s := range switches {
		for j := 0; j < t; j++ {
			tm := b.AddTerminal(fmt.Sprintf("h%d-%d", s, j))
			b.AddLink(tm, s)
		}
	}
}

// Stats summarizes a topology in the shape of the paper's Table 1.
type Stats struct {
	Name      string
	Switches  int
	Terminals int
	// SSLinks is the number of switch-to-switch duplex links (the
	// "Channels" column of Table 1 counts these).
	SSLinks int
}

// Describe computes Table 1-style statistics.
func Describe(tp *Topology) Stats {
	g := tp.Net
	ss := 0
	for i := 0; i < g.NumChannels(); i += 2 { // one per duplex link
		c := g.Channel(graph.ChannelID(i))
		if c.Failed {
			continue
		}
		if g.IsSwitch(c.From) && g.IsSwitch(c.To) {
			ss++
		}
	}
	return Stats{
		Name:      tp.Name,
		Switches:  g.NumSwitches(),
		Terminals: g.NumTerminals(),
		SSLinks:   ss,
	}
}
