package topology

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestRingWithShortcutMatchesFig2a(t *testing.T) {
	tp := RingWithShortcut()
	g := tp.Net
	if g.NumSwitches() != 5 || g.NumTerminals() != 0 {
		t.Fatalf("got %d switches, %d terminals", g.NumSwitches(), g.NumTerminals())
	}
	// 6 duplex links = 12 channels.
	if g.NumChannels() != 12 {
		t.Fatalf("NumChannels = %d, want 12", g.NumChannels())
	}
	// Shortcut n3-n5 (IDs 2 and 4).
	if g.FindChannel(2, 4) == graph.NoChannel {
		t.Error("missing shortcut channel n3->n5")
	}
	if g.FindChannel(4, 2) == graph.NoChannel {
		t.Error("missing shortcut channel n5->n3")
	}
	// n1 (ID 0) has degree 2.
	if d := g.Degree(0); d != 2 {
		t.Errorf("degree(n1) = %d, want 2", d)
	}
	// n3, n5 have degree 3.
	for _, n := range []graph.NodeID{2, 4} {
		if d := g.Degree(n); d != 3 {
			t.Errorf("degree(node %d) = %d, want 3", n, d)
		}
	}
}

// TestTable1Counts checks every generated Table 1 topology against the
// paper's published switch/terminal/channel counts. Channel counts that
// the paper rounds or that depend on unpublished cabling are checked with
// the tolerance documented in DESIGN.md.
func TestTable1Counts(t *testing.T) {
	tests := []struct {
		name            string
		tp              *Topology
		switches        int
		terminals       int
		ssLinks         int
		ssLinkTolerance int
	}{
		{"torus 6x5x5 r=4", Torus3D(6, 5, 5, 7, 4), 150, 1050, 1800, 0},
		{"10-ary 3-tree", KAryNTree(10, 3, 11), 300, 1100, 2000, 0},
		{"kautz b=5 k=3 r=2", Kautz(5, 3, 7, 2), 150, 1050, 1500, 0},
		{"dragonfly a12 p6 h6 g15", Dragonfly(12, 6, 6, 15), 180, 1080, 1515, 0},
		{"cascade 2 groups", Cascade2Group(), 192, 1536, 3072, 0},
		{"tsubame2.5-like", TsubameLike(), 243, 1407, 3456, 0},
		{"random 125/1000", RandomTopology(rand.New(rand.NewSource(1)), 125, 1000, 8), 125, 1000, 1000, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			st := Describe(tc.tp)
			if st.Switches != tc.switches {
				t.Errorf("switches = %d, want %d", st.Switches, tc.switches)
			}
			if st.Terminals != tc.terminals {
				t.Errorf("terminals = %d, want %d", st.Terminals, tc.terminals)
			}
			diff := st.SSLinks - tc.ssLinks
			if diff < 0 {
				diff = -diff
			}
			if diff > tc.ssLinkTolerance {
				t.Errorf("switch-switch links = %d, want %d (±%d)", st.SSLinks, tc.ssLinks, tc.ssLinkTolerance)
			}
			if !graph.Connected(tc.tp.Net) {
				t.Error("topology not connected")
			}
		})
	}
}

// TestTsubameWindowedClosAssumption pins the one Table 1 discrepancy to
// its documented cause. Tsubame2.5's production cabling is not public, so
// TsubameLike substitutes a windowed Clos: edge switch i uplinks to the
// 16 spines in the cyclic window i..i+15 (mod 27). That assumption fixes
// the switch-to-switch link count at 216 edges x 16 uplinks = 3,456 —
// +72 links (+2.1%) over the paper's published 3,384, which implies an
// average of 15.67 uplinks per edge switch (3384/216), i.e. the real
// machine cables some edge switches with fewer uplinks. This test pins
// both the exact substitute count and the structural properties the
// window guarantees, so any later "fix" toward 3,384 must consciously
// revisit the cabling model rather than drift.
func TestTsubameWindowedClosAssumption(t *testing.T) {
	const (
		edges     = 216
		spines    = 27
		uplinks   = 16
		published = 3384 // Table 1
	)
	tp := TsubameLike()
	st := Describe(tp)

	// The windowed-Clos count, and its documented offset from Table 1.
	if st.SSLinks != edges*uplinks {
		t.Fatalf("ss links = %d, want %d (216 edges x 16 uplinks)", st.SSLinks, edges*uplinks)
	}
	if st.SSLinks-published != 72 {
		t.Errorf("discrepancy vs. published = %+d links, documented as +72 (+2.1%%)", st.SSLinks-published)
	}

	g := tp.Net
	// Every edge switch has exactly 16 spine uplinks; every spine exactly
	// 16*216/27 = 128 downlinks — the uniformity the published count
	// cannot satisfy (3384 is not divisible by 216).
	spineDeg := make(map[graph.NodeID]int)
	for _, s := range g.Switches() {
		if tp.Tree.Level[s] != 0 {
			continue
		}
		up := 0
		for _, c := range g.Out(s) {
			to := g.Channel(c).To
			if g.IsSwitch(to) {
				up++
				spineDeg[to]++
			}
		}
		if up != uplinks {
			t.Fatalf("edge switch %d has %d uplinks, want %d", s, up, uplinks)
		}
	}
	if len(spineDeg) != spines {
		t.Fatalf("edge switches reach %d spines, want %d", len(spineDeg), spines)
	}
	for sp, deg := range spineDeg {
		if deg != edges*uplinks/spines {
			t.Errorf("spine %d has %d downlinks, want %d", sp, deg, edges*uplinks/spines)
		}
	}
	if published%edges == 0 {
		t.Error("published count became divisible by the edge count; revisit the discrepancy note")
	}

	// The window property that makes the substitute fat-tree routable:
	// any two 16-of-27 cyclic windows overlap (16 > 27/2), so every pair
	// of edge switches shares at least one spine.
	for i := 0; i < edges; i++ {
		for j := i + 1; j < i+spines && j < edges; j++ {
			shared := false
			for u := 0; u < uplinks && !shared; u++ {
				su := (i + u) % spines
				for v := 0; v < uplinks; v++ {
					if su == (j+v)%spines {
						shared = true
						break
					}
				}
			}
			if !shared {
				t.Fatalf("edge windows %d and %d share no spine", i, j)
			}
		}
	}
}

func TestTorusStructure(t *testing.T) {
	tp := Torus3D(4, 4, 3, 4, 1)
	g := tp.Net
	if g.NumSwitches() != 48 {
		t.Fatalf("switches = %d, want 48", g.NumSwitches())
	}
	if g.NumTerminals() != 192 {
		t.Fatalf("terminals = %d, want 192", g.NumTerminals())
	}
	// Every torus switch has degree 6 (x+-, y+-, z+-) + 4 terminals = 10.
	for _, s := range g.Switches() {
		if d := g.Degree(s); d != 10 {
			t.Errorf("switch %d degree = %d, want 10", s, d)
		}
	}
	// Coordinates round-trip.
	for id, c := range tp.Torus.Coord {
		if tp.Torus.SwitchAt[c[0]][c[1]][c[2]] != id {
			t.Errorf("coord mismatch for switch %d", id)
		}
	}
}

func TestTorusRedundancyMultigraph(t *testing.T) {
	tp := Torus3D(3, 3, 3, 0, 4)
	g := tp.Net
	a := tp.Torus.SwitchAt[0][0][0]
	b := tp.Torus.SwitchAt[1][0][0]
	if got := len(g.ChannelsBetween(a, b)); got != 4 {
		t.Errorf("parallel channels = %d, want 4", got)
	}
}

func TestTorusDimTwoNoDoubleLink(t *testing.T) {
	tp := Torus3D(2, 2, 2, 1, 1)
	g := tp.Net
	a := tp.Torus.SwitchAt[0][0][0]
	b := tp.Torus.SwitchAt[1][0][0]
	if got := len(g.ChannelsBetween(a, b)); got != 1 {
		t.Errorf("dim-2 ring has %d parallel links, want 1", got)
	}
	// Degree: 3 neighbors + 1 terminal.
	if d := g.Degree(a); d != 4 {
		t.Errorf("degree = %d, want 4", d)
	}
}

func TestKAryNTreeStructure(t *testing.T) {
	tp := KAryNTree(4, 2, 4)
	g := tp.Net
	if g.NumSwitches() != 8 {
		t.Fatalf("switches = %d, want 8", g.NumSwitches())
	}
	// Leaves (level 0) have 4 ups + 4 terminals; roots have 4 downs.
	for _, s := range g.Switches() {
		lvl := tp.Tree.Level[s]
		d := g.Degree(s)
		switch lvl {
		case 0:
			if d != 8 {
				t.Errorf("leaf %d degree = %d, want 8", s, d)
			}
		case 1:
			if d != 4 {
				t.Errorf("root %d degree = %d, want 4", s, d)
			}
		}
	}
	if !graph.Connected(g) {
		t.Error("tree not connected")
	}
}

func TestDragonflyGlobalLinksConnectGroups(t *testing.T) {
	tp := Dragonfly(4, 2, 2, 9) // full-size dragonfly: g = a*h+1
	if !graph.Connected(tp.Net) {
		t.Error("dragonfly not connected")
	}
	st := Describe(tp)
	// Local: 9 * C(4,2) = 54; global: 4*2*9/2 = 36.
	if st.SSLinks != 90 {
		t.Errorf("ss links = %d, want 90", st.SSLinks)
	}
}

func TestRandomTopologyDeterministicPerSeed(t *testing.T) {
	a := RandomTopology(rand.New(rand.NewSource(7)), 30, 60, 2)
	b := RandomTopology(rand.New(rand.NewSource(7)), 30, 60, 2)
	var bufA, bufB bytes.Buffer
	if err := Write(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := Write(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("same seed produced different topologies")
	}
	c := RandomTopology(rand.New(rand.NewSource(8)), 30, 60, 2)
	var bufC bytes.Buffer
	if err := Write(&bufC, c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA.Bytes(), bufC.Bytes()) {
		t.Error("different seeds produced identical topologies")
	}
}

func TestInjectLinkFailuresKeepsConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tp := Torus3D(4, 4, 4, 2, 1)
	failed, n := InjectLinkFailures(tp, rng, 0.05)
	if n == 0 {
		t.Fatal("no links failed")
	}
	if !graph.Connected(failed.Net) {
		t.Error("failure injection disconnected the network")
	}
	// Original untouched.
	if st := Describe(tp); st.SSLinks != 192 {
		t.Errorf("original mutated: ss links = %d, want 192", st.SSLinks)
	}
	if st := Describe(failed); st.SSLinks != 192-n {
		t.Errorf("failed copy ss links = %d, want %d", st.SSLinks, 192-n)
	}
}

func TestFailSwitchFig1Network(t *testing.T) {
	tp := Torus3D(4, 4, 3, 4, 1)
	faulty := FailSwitch(tp, tp.Torus.SwitchAt[1][1][1])
	if !graph.Connected(faulty.Net) {
		t.Error("torus minus one switch should stay connected")
	}
	// 47 working switches (one isolated stub).
	working := 0
	for _, s := range faulty.Net.Switches() {
		if faulty.Net.Degree(s) > 0 {
			working++
		}
	}
	if working != 47 {
		t.Errorf("working switches = %d, want 47", working)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	orig := Torus3D(3, 3, 2, 2, 2)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name {
		t.Errorf("name = %q, want %q", back.Name, orig.Name)
	}
	if back.Net.NumNodes() != orig.Net.NumNodes() {
		t.Errorf("nodes = %d, want %d", back.Net.NumNodes(), orig.Net.NumNodes())
	}
	if back.Net.NumChannels() != orig.Net.NumChannels() {
		t.Errorf("channels = %d, want %d", back.Net.NumChannels(), orig.Net.NumChannels())
	}
}

func TestSerializationRoundTripGroups(t *testing.T) {
	orig := Ring(4, 2)
	terms := orig.Net.Terminals()
	orig.Groups = [][]graph.NodeID{
		{terms[0], terms[2], terms[5]},
		{terms[1], terms[3]},
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Groups, orig.Groups) {
		t.Errorf("groups = %v, want %v", back.Groups, orig.Groups)
	}
	// A second round-trip is byte-identical.
	var buf2 bytes.Buffer
	if err := Write(&buf2, back); err != nil {
		t.Fatal(err)
	}
	if buf2.String() == "" || buf2.String() != func() string {
		var b bytes.Buffer
		Write(&b, orig)
		return b.String()
	}() {
		t.Error("group serialization is not stable across round-trips")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"node 5 switch x\n",                   // non-dense id
		"node 0 gateway x\n",                  // unknown kind
		"node 0 switch a\nlink 0 3\n",         // link out of range
		"frobnicate\n",                        // unknown directive
		"node 0 terminal a\nlink 0 0\n",       // self link -> panic guarded? builder panics
		"node 0 terminal a\nmcastgroup 1\n",   // group without members
		"node 0 terminal a\nmcastgroup 2 0\n", // non-dense group id
		"node 0 terminal a\nmcastgroup 1 7\n", // member out of range
	}
	for i, in := range cases {
		func() {
			defer func() { recover() }() // self-link panics; treat as rejection
			if _, err := Read(bytes.NewBufferString(in)); err == nil {
				t.Errorf("case %d: Read accepted malformed input", i)
			}
		}()
	}
}

func TestMesh3DStructure(t *testing.T) {
	tp := Mesh3D(3, 3, 3, 1, 1)
	g := tp.Net
	if tp.Torus.Wrap {
		t.Error("mesh reports Wrap=true")
	}
	// 3D mesh links: 3 * 2*3*3 = 54 (no wrap links).
	if st := Describe(tp); st.SSLinks != 54 {
		t.Errorf("mesh ss links = %d, want 54", st.SSLinks)
	}
	// Corner switch: 3 neighbors + 1 terminal.
	corner := tp.Torus.SwitchAt[0][0][0]
	if d := g.Degree(corner); d != 4 {
		t.Errorf("corner degree = %d, want 4", d)
	}
	// Center switch: 6 neighbors + 1 terminal.
	center := tp.Torus.SwitchAt[1][1][1]
	if d := g.Degree(center); d != 7 {
		t.Errorf("center degree = %d, want 7", d)
	}
	if !graph.Connected(g) {
		t.Error("mesh not connected")
	}
}

func TestMesh2DNaming(t *testing.T) {
	tp := Mesh2D(4, 4, 1)
	if tp.Name != "mesh-4x4" {
		t.Errorf("name = %q, want mesh-4x4", tp.Name)
	}
	if tp.Net.NumSwitches() != 16 || tp.Net.NumTerminals() != 16 {
		t.Errorf("size = %d/%d, want 16/16", tp.Net.NumSwitches(), tp.Net.NumTerminals())
	}
}

func TestTorusStillWraps(t *testing.T) {
	tp := Torus3D(4, 1, 1, 0, 1)
	g := tp.Net
	a := tp.Torus.SwitchAt[0][0][0]
	d := tp.Torus.SwitchAt[3][0][0]
	if g.FindChannel(d, a) == graph.NoChannel {
		t.Error("torus missing wrap link")
	}
	m := Mesh3D(4, 1, 1, 0, 1)
	ma := m.Torus.SwitchAt[0][0][0]
	md := m.Torus.SwitchAt[3][0][0]
	if m.Net.FindChannel(md, ma) != graph.NoChannel {
		t.Error("mesh has a wrap link")
	}
}
