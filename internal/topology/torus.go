package topology

import (
	"fmt"

	"repro/internal/graph"
)

// Torus3D builds a dx × dy × dz 3D torus of switches with t terminals per
// switch and r parallel links (redundancy) between adjacent switches.
// Dimensions of size 1 are allowed (degenerate), dimensions of size 2 get
// a single link (not a double link) between the two switches of a ring.
func Torus3D(dx, dy, dz, t, r int) *Topology {
	return grid3D(dx, dy, dz, t, r, true)
}

// Mesh3D builds a dx × dy × dz 3D mesh (a torus without wrap-around
// links). Meshes are the canonical network-on-chip substrate (§7 of the
// paper); plain dimension-order routing is deadlock-free on them with a
// single virtual channel.
func Mesh3D(dx, dy, dz, t, r int) *Topology {
	return grid3D(dx, dy, dz, t, r, false)
}

// Mesh2D builds a dx × dy mesh of tiles, the typical NoC floor plan.
func Mesh2D(dx, dy, t int) *Topology {
	tp := grid3D(dx, dy, 1, t, 1, false)
	tp.Name = fmt.Sprintf("mesh-%dx%d", dx, dy)
	return tp
}

func grid3D(dx, dy, dz, t, r int, wrap bool) *Topology {
	if dx < 1 || dy < 1 || dz < 1 {
		panic("topology: torus dimensions must be >= 1")
	}
	if r < 1 {
		panic("topology: torus redundancy must be >= 1")
	}
	b := graph.NewBuilder()
	meta := &TorusMeta{
		Dims:     [3]int{dx, dy, dz},
		Wrap:     wrap,
		Coord:    make(map[graph.NodeID][3]int),
		SwitchAt: make([][][]graph.NodeID, dx),
	}
	for x := 0; x < dx; x++ {
		meta.SwitchAt[x] = make([][]graph.NodeID, dy)
		for y := 0; y < dy; y++ {
			meta.SwitchAt[x][y] = make([]graph.NodeID, dz)
			for z := 0; z < dz; z++ {
				id := b.AddSwitch(fmt.Sprintf("t%d-%d-%d", x, y, z))
				meta.SwitchAt[x][y][z] = id
				meta.Coord[id] = [3]int{x, y, z}
			}
		}
	}
	link := func(a, c graph.NodeID) {
		for i := 0; i < r; i++ {
			b.AddLink(a, c)
		}
	}
	for x := 0; x < dx; x++ {
		for y := 0; y < dy; y++ {
			for z := 0; z < dz; z++ {
				s := meta.SwitchAt[x][y][z]
				// +x, +y, +z neighbors; wrap-around (tori only) once per
				// ring, and no duplicate link for rings of size 2.
				if dx > 1 && (x+1 < dx || (wrap && dx > 2)) {
					link(s, meta.SwitchAt[(x+1)%dx][y][z])
				}
				if dy > 1 && (y+1 < dy || (wrap && dy > 2)) {
					link(s, meta.SwitchAt[x][(y+1)%dy][z])
				}
				if dz > 1 && (z+1 < dz || (wrap && dz > 2)) {
					link(s, meta.SwitchAt[x][y][(z+1)%dz])
				}
			}
		}
	}
	switches := make([]graph.NodeID, 0, dx*dy*dz)
	for x := 0; x < dx; x++ {
		for y := 0; y < dy; y++ {
			for z := 0; z < dz; z++ {
				switches = append(switches, meta.SwitchAt[x][y][z])
			}
		}
	}
	addTerminals(b, switches, t)
	kind := "torus"
	if !wrap {
		kind = "mesh"
	}
	return &Topology{
		Net:   b.MustBuild(),
		Name:  fmt.Sprintf("%s-%dx%dx%d", kind, dx, dy, dz),
		Torus: meta,
	}
}
