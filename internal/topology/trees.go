package topology

import (
	"fmt"

	"repro/internal/graph"
)

// KAryNTree builds a k-ary n-tree: n levels of k^(n-1) switches each,
// level 0 being the leaves. A level-l switch labeled by an (n-1)-digit
// base-k word w connects upward to the k level-(l+1) switches whose labels
// agree with w in every digit except digit l. Each leaf switch carries
// terminalsPerLeaf terminals.
//
// The paper's "10-ary 3-tree" is KAryNTree(10, 3, 11): 300 switches,
// 1,100 terminals, 2,000 switch-to-switch links (Table 1).
func KAryNTree(k, n, terminalsPerLeaf int) *Topology {
	if k < 2 || n < 2 {
		panic("topology: k-ary n-tree needs k >= 2, n >= 2")
	}
	b := graph.NewBuilder()
	perLevel := pow(k, n-1)
	sw := make([][]graph.NodeID, n) // sw[level][word]
	level := make(map[graph.NodeID]int)
	for l := 0; l < n; l++ {
		sw[l] = make([]graph.NodeID, perLevel)
		for w := 0; w < perLevel; w++ {
			id := b.AddSwitch(fmt.Sprintf("L%d-%d", l, w))
			sw[l][w] = id
			level[id] = l
		}
	}
	// Up links: digit l of the word varies between level l and l+1.
	for l := 0; l < n-1; l++ {
		stride := pow(k, l)
		for w := 0; w < perLevel; w++ {
			digit := (w / stride) % k
			base := w - digit*stride
			for d := 0; d < k; d++ {
				up := base + d*stride
				b.AddLink(sw[l][w], sw[l+1][up])
			}
		}
	}
	addTerminals(b, sw[0], terminalsPerLeaf)
	return &Topology{
		Net:  b.MustBuild(),
		Name: fmt.Sprintf("%d-ary %d-tree", k, n),
		Tree: &TreeMeta{Level: level, NumLevels: n},
	}
}

// TsubameLike approximates the 2nd InfiniBand rail of Tsubame2.5 as a
// two-tier windowed Clos: 216 edge switches carrying 1,407 terminals
// (distributed round-robin) and 27 spine switches; edge switch i uplinks
// to the 16 spines in the cyclic window starting at i (windows of 16 out
// of 27 always pairwise overlap, so any two edges share a spine and the
// network is fat-tree routable). This matches Table 1's published counts
// (243 switches, 1,407 terminals; 3,456 vs. the published 3,384
// switch-to-switch links, ~2% off) without reproducing the exact
// production cabling, which is not public.
func TsubameLike() *Topology {
	const (
		edges     = 216
		spines    = 27
		uplinks   = 16
		terminals = 1407
	)
	b := graph.NewBuilder()
	level := make(map[graph.NodeID]int)
	edge := make([]graph.NodeID, edges)
	for i := range edge {
		edge[i] = b.AddSwitch(fmt.Sprintf("edge%d", i))
		level[edge[i]] = 0
	}
	spine := make([]graph.NodeID, spines)
	for i := range spine {
		spine[i] = b.AddSwitch(fmt.Sprintf("spine%d", i))
		level[spine[i]] = 1
	}
	for i := 0; i < edges; i++ {
		for u := 0; u < uplinks; u++ {
			// Cyclic window: spines i..i+15 (mod 27); each spine ends up
			// with 128 downlinks.
			s := (i + u) % spines
			b.AddLink(edge[i], spine[s])
		}
	}
	for t := 0; t < terminals; t++ {
		tm := b.AddTerminal(fmt.Sprintf("node%d", t))
		b.AddLink(tm, edge[t%edges])
	}
	return &Topology{
		Net:  b.MustBuild(),
		Name: "tsubame2.5-like",
		Tree: &TreeMeta{Level: level, NumLevels: 2},
	}
}

func pow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}
