package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/graph"
)

// Binary trace format (record/replay): a generated workload — or an
// external trace converted into it — reruns bit-identically from the
// file alone. Layout (little-endian):
//
//	magic   [8]byte  "NUEWKLD1"
//	count   uint64   number of flow records
//	records count x {src uint32, dst uint32, bytes uint64,
//	                 start int64, tenant uint16}   (26 bytes each)
//	crc     uint32   IEEE CRC32 over everything above
//
// Encoding is a pure function of the flow slice, so
// encode(decode(encode(f))) is byte-identical — the round-trip tests
// pin both directions.

var traceMagic = [8]byte{'N', 'U', 'E', 'W', 'K', 'L', 'D', '1'}

const traceRecordSize = 4 + 4 + 8 + 8 + 2

// WriteTrace encodes the flows to w in the binary trace format.
func WriteTrace(w io.Writer, flows []Flow) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var rec [traceRecordSize]byte
	binary.LittleEndian.PutUint64(rec[:8], uint64(len(flows)))
	if _, err := bw.Write(rec[:8]); err != nil {
		return err
	}
	for _, f := range flows {
		binary.LittleEndian.PutUint32(rec[0:], uint32(f.Src))
		binary.LittleEndian.PutUint32(rec[4:], uint32(f.Dst))
		binary.LittleEndian.PutUint64(rec[8:], uint64(f.Bytes))
		binary.LittleEndian.PutUint64(rec[16:], uint64(f.Start))
		binary.LittleEndian.PutUint16(rec[24:], f.Tenant)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	// The CRC covers header + records; flush the payload into the hash
	// before sealing.
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// ReadTrace decodes a trace written by WriteTrace, verifying the CRC.
// The hash is fed exactly the consumed header + records (the buffered
// reader's read-ahead never leaks trailer bytes into it).
func ReadTrace(r io.Reader) ([]Flow, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 1<<16)
	var head [16]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	crc.Write(head[:])
	if [8]byte(head[:8]) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", head[:8])
	}
	count := binary.LittleEndian.Uint64(head[8:])
	const maxFlows = 1 << 31 // ~56 GB of records: reject corrupt counts early
	if count > maxFlows {
		return nil, fmt.Errorf("workload: implausible trace flow count %d", count)
	}
	flows := make([]Flow, 0, count)
	var rec [traceRecordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("workload: trace record %d: %w", i, err)
		}
		crc.Write(rec[:])
		flows = append(flows, Flow{
			Src:    graph.NodeID(binary.LittleEndian.Uint32(rec[0:])),
			Dst:    graph.NodeID(binary.LittleEndian.Uint32(rec[4:])),
			Bytes:  int64(binary.LittleEndian.Uint64(rec[8:])),
			Start:  int64(binary.LittleEndian.Uint64(rec[16:])),
			Tenant: binary.LittleEndian.Uint16(rec[24:]),
		})
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("workload: trace checksum: %w", err)
	}
	if want := binary.LittleEndian.Uint32(tail[:]); want != crc.Sum32() {
		return nil, fmt.Errorf("workload: trace checksum mismatch: file %08x, computed %08x", want, crc.Sum32())
	}
	return flows, nil
}
