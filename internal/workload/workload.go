// Package workload generates trace-driven traffic for the flow-level
// and flit-level simulators: composable patterns (hotspot with
// configurable Zipf skew, k-to-1 incast, random and adversarial shift
// permutations), multi-tenant mixes that weight and interleave
// sub-patterns, and a seeded open-loop Poisson arrival process. Every
// generator emits the common Flow stream, is a pure function of its
// seed (same seed, same flows — the determinism tests pin it), and can
// be recorded to and replayed from a compact binary trace
// bit-identically (trace.go).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Flow is one transfer between terminals: the unit every generator
// emits, the trace format stores, and the flow-level simulator
// (internal/flowsim) schedules.
type Flow struct {
	Src, Dst graph.NodeID
	// Bytes is the transfer size.
	Bytes int64
	// Start is the arrival tick (the open-loop injection time; the
	// fluid simulator's clock starts at 0).
	Start int64
	// Tenant indexes the Mix tenant the flow belongs to (0 for
	// single-tenant workloads); per-tenant throughput and latency
	// percentiles aggregate over it.
	Tenant uint16
}

// PairStream produces the (src, dst) terminal-index sequence of one
// pattern. Streams are deterministic: they draw only from the seeded
// rng they were built with.
type PairStream interface {
	// Next returns terminal indices src != dst in [0, terms).
	Next() (src, dst int)
}

// Pattern is a composable traffic pattern: a named factory for pair
// streams over a terminal set of the given size.
type Pattern interface {
	Name() string
	Stream(terms int, rng *rand.Rand) PairStream
}

// Uniform spreads traffic uniformly at random over all ordered
// terminal pairs.
type Uniform struct{}

func (Uniform) Name() string { return "uniform" }

func (Uniform) Stream(terms int, rng *rand.Rand) PairStream {
	return &uniformStream{terms: terms, rng: rng}
}

type uniformStream struct {
	terms int
	rng   *rand.Rand
}

func (s *uniformStream) Next() (int, int) {
	src := s.rng.Intn(s.terms)
	dst := s.rng.Intn(s.terms - 1)
	if dst >= src {
		dst++
	}
	return src, dst
}

// Hotspot skews destinations toward a few hot terminals with a Zipf
// distribution: rank r (over a seeded shuffle of the terminals, so the
// hot set is topology-independent) is drawn with probability
// proportional to 1/(r+1)^Skew. Skew = 0 degenerates to uniform; the
// adversarial regime is Skew in [1, 2].
type Hotspot struct {
	// Skew is the Zipf exponent (>= 0; values >= 1 concentrate most
	// traffic on the first few ranks).
	Skew float64
}

func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(s=%.2f)", h.Skew) }

func (h Hotspot) Stream(terms int, rng *rand.Rand) PairStream {
	s := h.Skew
	if s < 0 {
		s = 0
	}
	perm := rng.Perm(terms)
	// rand.Zipf requires s > 1; emulate lower exponents with a rank
	// CDF built once (terms is small compared to the flow count).
	cdf := make([]float64, terms)
	total := 0.0
	for r := 0; r < terms; r++ {
		total += 1.0 / math.Pow(float64(r+1), s)
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	return &hotspotStream{perm: perm, cdf: cdf, rng: rng}
}

type hotspotStream struct {
	perm []int
	cdf  []float64
	rng  *rand.Rand
}

func (s *hotspotStream) Next() (int, int) {
	// Binary-search the rank CDF, then map rank -> terminal through the
	// shuffle.
	u := s.rng.Float64()
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	dst := s.perm[lo]
	src := s.rng.Intn(len(s.perm) - 1)
	if src >= dst {
		src++
	}
	return src, dst
}

// Incast is the k-to-1 pattern: groups of Fanin consecutive flows
// converge on one victim terminal, then the next group picks a new
// victim. The classic storage/parameter-server storm.
type Incast struct {
	// Fanin is the number of concurrent senders per victim (default 8).
	Fanin int
}

func (i Incast) Name() string { return fmt.Sprintf("incast(k=%d)", i.fanin()) }

func (i Incast) fanin() int {
	if i.Fanin <= 0 {
		return 8
	}
	return i.Fanin
}

func (i Incast) Stream(terms int, rng *rand.Rand) PairStream {
	return &incastStream{terms: terms, fanin: i.fanin(), rng: rng}
}

type incastStream struct {
	terms, fanin int
	rng          *rand.Rand
	victim       int
	left         int
}

func (s *incastStream) Next() (int, int) {
	if s.left == 0 {
		s.victim = s.rng.Intn(s.terms)
		s.left = s.fanin
	}
	s.left--
	src := s.rng.Intn(s.terms - 1)
	if src >= s.victim {
		src++
	}
	return src, s.victim
}

// Permutation sends every terminal's traffic to a fixed partner chosen
// by a seeded fixed-point-free random permutation; senders cycle
// round-robin so all partners stay loaded.
type Permutation struct{}

func (Permutation) Name() string { return "permutation" }

func (Permutation) Stream(terms int, rng *rand.Rand) PairStream {
	pi := rng.Perm(terms)
	// Derange: a fixed point would make a flow route to itself. Swap it
	// with its successor (deterministic, keeps the permutation a
	// bijection).
	for i := 0; i < terms; i++ {
		if pi[i] == i {
			j := (i + 1) % terms
			pi[i], pi[j] = pi[j], pi[i]
		}
	}
	return &permStream{pi: pi}
}

type permStream struct {
	pi  []int
	cur int
}

func (s *permStream) Next() (int, int) {
	src := s.cur
	s.cur = (s.cur + 1) % len(s.pi)
	return src, s.pi[src]
}

// Shift is the adversarial structured permutation: terminal i sends to
// (i + Offset) mod terms. Offset 0 defaults to terms/2 — the
// bisection-crossing worst case for most direct topologies.
type Shift struct {
	Offset int
}

func (sh Shift) Name() string {
	if sh.Offset <= 0 {
		return "shift(T/2)"
	}
	return fmt.Sprintf("shift(%d)", sh.Offset)
}

func (sh Shift) Stream(terms int, _ *rand.Rand) PairStream {
	off := sh.Offset
	if off <= 0 {
		off = terms / 2
	}
	off %= terms
	if off == 0 {
		off = 1
	}
	return &shiftStream{terms: terms, off: off}
}

type shiftStream struct {
	terms, off, cur int
}

func (s *shiftStream) Next() (int, int) {
	src := s.cur
	s.cur = (s.cur + 1) % s.terms
	return src, (src + s.off) % s.terms
}

// TenantSpec is one tenant of a multi-tenant mix: a named sub-pattern
// with an interleave weight and a per-flow transfer size.
type TenantSpec struct {
	Name    string
	Weight  int
	Pattern Pattern
	Bytes   int64
}

// Mix weights and interleaves sub-patterns: each generated flow is
// drawn from tenant t with probability Weight_t / sum(Weights), from
// t's own deterministic pattern stream.
type Mix struct {
	Tenants []TenantSpec
}

// Single wraps one pattern as a single-tenant mix.
func Single(p Pattern, bytes int64) Mix {
	return Mix{Tenants: []TenantSpec{{Name: p.Name(), Weight: 1, Pattern: p, Bytes: bytes}}}
}

// Arrival is the open-loop arrival process: the tick gap between
// consecutive flow starts.
type Arrival interface {
	Name() string
	NextGap(rng *rand.Rand) int64
}

// Poisson arrivals with the given mean inter-arrival gap in ticks
// (exponential gaps, rounded to the integer tick grid so traces store
// exact times).
type Poisson struct {
	MeanGap float64
}

func (p Poisson) Name() string { return fmt.Sprintf("poisson(mean=%.1f)", p.MeanGap) }

func (p Poisson) NextGap(rng *rand.Rand) int64 {
	if p.MeanGap <= 0 {
		return 0
	}
	g := rng.ExpFloat64() * p.MeanGap
	return int64(g + 0.5)
}

// Closed starts every flow at tick 0 (a closed batch: the steady-state
// saturation workload).
type Closed struct{}

func (Closed) Name() string               { return "closed" }
func (Closed) NextGap(_ *rand.Rand) int64 { return 0 }

// Generate emits n flows of the mix over the terminal set, with starts
// from the arrival process. It is a pure function of (terminals, mix,
// n, arrival, seed): same inputs, bit-identical flows. Sub-streams are
// seeded independently, so adding a tenant does not perturb the others'
// pair sequences.
func Generate(terminals []graph.NodeID, mix Mix, n int, arrival Arrival, seed int64) []Flow {
	if len(terminals) < 2 || n <= 0 || len(mix.Tenants) == 0 {
		return nil
	}
	pick := rand.New(rand.NewSource(seed*1_000_003 + 1))
	arr := rand.New(rand.NewSource(seed*1_000_003 + 2))
	streams := make([]PairStream, len(mix.Tenants))
	totalW := 0
	for i, t := range mix.Tenants {
		streams[i] = t.Pattern.Stream(len(terminals), rand.New(rand.NewSource(seed*1_000_003+3+int64(i))))
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		totalW += w
	}
	flows := make([]Flow, 0, n)
	now := int64(0)
	for i := 0; i < n; i++ {
		// Weighted tenant draw.
		r := pick.Intn(totalW)
		ti := 0
		for j, t := range mix.Tenants {
			w := t.Weight
			if w <= 0 {
				w = 1
			}
			if r < w {
				ti = j
				break
			}
			r -= w
		}
		src, dst := streams[ti].Next()
		bytes := mix.Tenants[ti].Bytes
		if bytes <= 0 {
			bytes = 64 * 1024
		}
		flows = append(flows, Flow{
			Src:    terminals[src],
			Dst:    terminals[dst],
			Bytes:  bytes,
			Start:  now,
			Tenant: uint16(ti),
		})
		now += arrival.NextGap(arr)
	}
	return flows
}

// TenantNames extracts the mix's tenant names, indexed like
// Flow.Tenant (for report labeling).
func (m Mix) TenantNames() []string {
	names := make([]string, len(m.Tenants))
	for i, t := range m.Tenants {
		names[i] = t.Name
	}
	return names
}
