package workload

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/topology"
)

func testTerminals(t *testing.T) []graph.NodeID {
	t.Helper()
	tp := topology.Ring(8, 2)
	terms := tp.Net.Terminals()
	if len(terms) != 16 {
		t.Fatalf("fixture: %d terminals", len(terms))
	}
	return terms
}

// allPatterns enumerates every generator the package ships, so the
// determinism sweep can never silently skip a new one.
func allPatterns() []Pattern {
	return []Pattern{
		Uniform{},
		Hotspot{Skew: 1.2},
		Hotspot{Skew: 0},
		Incast{Fanin: 4},
		Permutation{},
		Shift{},
		Shift{Offset: 3},
	}
}

// TestGeneratorDeterminism: same seed -> bit-identical flow stream, for
// every pattern and for both arrival processes; a different seed must
// produce a different stream (vacuity control).
func TestGeneratorDeterminism(t *testing.T) {
	terms := testTerminals(t)
	for _, p := range allPatterns() {
		for _, arr := range []Arrival{Closed{}, Poisson{MeanGap: 16}} {
			a := Generate(terms, Single(p, 4096), 500, arr, 42)
			b := Generate(terms, Single(p, 4096), 500, arr, 42)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: same seed produced different flows", p.Name(), arr.Name())
			}
			if len(a) != 500 {
				t.Errorf("%s/%s: generated %d flows, want 500", p.Name(), arr.Name(), len(a))
			}
			c := Generate(terms, Single(p, 4096), 500, arr, 43)
			if _, ok := p.(Shift); !ok && reflect.DeepEqual(a, c) {
				t.Errorf("%s/%s: seeds 42 and 43 produced identical flows", p.Name(), arr.Name())
			}
		}
	}
}

// TestFlowsWellFormed: every generated flow has src != dst, terminals
// from the set, positive bytes, and non-decreasing starts (open-loop
// arrivals are monotone).
func TestFlowsWellFormed(t *testing.T) {
	terms := testTerminals(t)
	inSet := map[graph.NodeID]bool{}
	for _, n := range terms {
		inSet[n] = true
	}
	for _, p := range allPatterns() {
		flows := Generate(terms, Single(p, 1024), 300, Poisson{MeanGap: 8}, 7)
		last := int64(0)
		for i, f := range flows {
			if f.Src == f.Dst {
				t.Fatalf("%s: flow %d has src == dst == %d", p.Name(), i, f.Src)
			}
			if !inSet[f.Src] || !inSet[f.Dst] {
				t.Fatalf("%s: flow %d endpoints outside terminal set", p.Name(), i)
			}
			if f.Bytes <= 0 {
				t.Fatalf("%s: flow %d bytes %d", p.Name(), i, f.Bytes)
			}
			if f.Start < last {
				t.Fatalf("%s: flow %d start %d < previous %d", p.Name(), i, f.Start, last)
			}
			last = f.Start
		}
	}
}

// TestIncastStructure: each group of Fanin consecutive flows shares one
// victim destination.
func TestIncastStructure(t *testing.T) {
	terms := testTerminals(t)
	const fanin = 4
	flows := Generate(terms, Single(Incast{Fanin: fanin}, 1024), 64, Closed{}, 3)
	for g := 0; g+fanin <= len(flows); g += fanin {
		for i := 1; i < fanin; i++ {
			if flows[g+i].Dst != flows[g].Dst {
				t.Fatalf("group %d: flow %d targets %d, group victim is %d",
					g/fanin, i, flows[g+i].Dst, flows[g].Dst)
			}
		}
	}
}

// TestHotspotSkew: with a strong Zipf exponent, the hottest destination
// must receive several times its uniform share.
func TestHotspotSkew(t *testing.T) {
	terms := testTerminals(t)
	flows := Generate(terms, Single(Hotspot{Skew: 1.5}, 1024), 4000, Closed{}, 11)
	counts := map[graph.NodeID]int{}
	for _, f := range flows {
		counts[f.Dst]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := len(flows) / len(terms)
	if max < 3*uniform {
		t.Errorf("hottest destination got %d flows; want >= 3x the uniform share %d", max, uniform)
	}
}

// TestPermutationFixedPartner: every source always sends to the same
// partner and no terminal is its own partner.
func TestPermutationFixedPartner(t *testing.T) {
	terms := testTerminals(t)
	flows := Generate(terms, Single(Permutation{}, 1024), 200, Closed{}, 9)
	partner := map[graph.NodeID]graph.NodeID{}
	for _, f := range flows {
		if p, ok := partner[f.Src]; ok && p != f.Dst {
			t.Fatalf("source %d has partners %d and %d", f.Src, p, f.Dst)
		}
		partner[f.Src] = f.Dst
	}
}

// TestMixInterleaving: a weighted two-tenant mix respects the weights
// approximately, tags tenants correctly, and each tenant's pair
// subsequence is independent of the other tenant's presence (streams
// are seeded per-tenant).
func TestMixInterleaving(t *testing.T) {
	terms := testTerminals(t)
	mix := Mix{Tenants: []TenantSpec{
		{Name: "bulk", Weight: 3, Pattern: Uniform{}, Bytes: 1 << 20},
		{Name: "rpc", Weight: 1, Pattern: Incast{Fanin: 2}, Bytes: 4096},
	}}
	flows := Generate(terms, mix, 4000, Closed{}, 5)
	count := [2]int{}
	for _, f := range flows {
		if f.Tenant > 1 {
			t.Fatalf("tenant index %d out of range", f.Tenant)
		}
		count[f.Tenant]++
		want := mix.Tenants[f.Tenant].Bytes
		if f.Bytes != want {
			t.Fatalf("tenant %d flow has %d bytes, want %d", f.Tenant, f.Bytes, want)
		}
	}
	ratio := float64(count[0]) / float64(count[1])
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("weight-3:1 mix produced ratio %.2f (%d vs %d)", ratio, count[0], count[1])
	}
}

// TestTraceRoundTrip: generate -> encode -> decode -> bit-identical
// flows, and re-encoding the decoded flows reproduces the identical
// byte stream.
func TestTraceRoundTrip(t *testing.T) {
	terms := testTerminals(t)
	mix := Mix{Tenants: []TenantSpec{
		{Name: "a", Weight: 2, Pattern: Hotspot{Skew: 1.1}, Bytes: 777},
		{Name: "b", Weight: 1, Pattern: Shift{}, Bytes: 1 << 30},
	}}
	flows := Generate(terms, mix, 1000, Poisson{MeanGap: 5}, 21)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, flows); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	encoded := append([]byte(nil), buf.Bytes()...)

	got, err := ReadTrace(bytes.NewReader(encoded))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(flows, got) {
		t.Fatal("decoded flows differ from the generated stream")
	}

	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(encoded, buf2.Bytes()) {
		t.Fatal("re-encoded trace bytes differ from the original encoding")
	}
}

// TestTraceCorruption: a flipped byte anywhere in the payload must be
// rejected by the CRC (or the header validation), never silently
// decoded.
func TestTraceCorruption(t *testing.T) {
	terms := testTerminals(t)
	flows := Generate(terms, Single(Uniform{}, 512), 50, Closed{}, 2)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, flows); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		bad := append([]byte(nil), clean...)
		bad[rng.Intn(len(bad))] ^= 0x40
		if got, err := ReadTrace(bytes.NewReader(bad)); err == nil && reflect.DeepEqual(got, flows) {
			t.Fatalf("trial %d: corrupted trace decoded to the clean flows without error", trial)
		}
	}
	// Truncation must error too.
	if _, err := ReadTrace(bytes.NewReader(clean[:len(clean)-5])); err == nil {
		t.Fatal("truncated trace decoded without error")
	}
}

// TestEmptyTrace: zero flows round-trip.
func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d flows from an empty trace", len(got))
	}
}
