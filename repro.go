// Package repro is a from-scratch Go reproduction of
//
//	Domke, Hoefler, Matsuoka: "Routing on the Dependency Graph: A New
//	Approach to Deadlock-Free High-Performance Routing", HPDC 2016.
//
// It implements Nue routing — a topology-agnostic, destination-based,
// oblivious routing function that searches paths inside the complete
// channel dependency graph so deadlock freedom holds for ANY topology and
// ANY number of virtual channels k >= 1 — together with the OpenSM
// baseline routings the paper compares against (Up*/Down*, LASH, DFSSSP,
// fat-tree, DOR/Torus-2QoS, MinHop, SSSP), topology generators for every
// network of the evaluation, a routing verifier, an edge-forwarding-index
// metric suite, and a flit-level lossless-network simulator.
//
// This file is the public facade; the implementation lives under
// internal/ (see DESIGN.md for the map). Quick start:
//
//	tp := repro.Torus3D(4, 4, 3, 4, 1)
//	res, err := repro.RouteNue(tp.Net, tp.Net.Terminals(), 4)
//	rep, err := repro.Verify(tp.Net, res)
//	sim, err := repro.SimulateAllToAll(tp.Net, res, 0)
package repro

import (
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/routing/verify"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Core graph and routing types, re-exported for API users.
type (
	// Network is an interconnection network (switches + terminals
	// connected by duplex channels).
	Network = graph.Network
	// NodeID identifies a node; ChannelID a directed channel.
	NodeID = graph.NodeID
	// ChannelID identifies one directed half of a duplex link.
	ChannelID = graph.ChannelID
	// Builder constructs custom networks.
	Builder = graph.Builder
	// Topology bundles a network with generator metadata.
	Topology = topology.Topology
	// RoutingResult is the output of any routing engine: forwarding
	// tables, VC usage and layer assignment.
	RoutingResult = routing.Result
	// Engine is the interface all routing algorithms implement.
	Engine = routing.Engine
	// NueOptions configures Nue routing.
	NueOptions = core.Options
	// VerifyReport summarizes connectivity/deadlock verification.
	VerifyReport = verify.Report
	// SimConfig tunes the flit-level simulator; SimResult its output.
	SimConfig = sim.Config
	// SimResult reports simulated throughput and deadlock status.
	SimResult = sim.Result
	// GammaStats is the edge forwarding index summary of §5.1.
	GammaStats = metrics.Gamma
)

// NewBuilder starts constructing a custom network.
func NewBuilder() *Builder { return graph.NewBuilder() }

// DefaultNueOptions returns the configuration used in the paper's
// evaluation (multilevel k-way partitioning, central escape roots, local
// backtracking and shortcuts enabled).
func DefaultNueOptions() NueOptions { return core.DefaultOptions() }

// NewNue returns a Nue routing engine.
func NewNue(opts NueOptions) Engine { return core.New(opts) }

// RouteNue routes the network toward dests with at most maxVCs virtual
// channels using the default options. Nue succeeds on every connected
// topology for every maxVCs >= 1.
func RouteNue(net *Network, dests []NodeID, maxVCs int) (*RoutingResult, error) {
	return core.New(core.DefaultOptions()).Route(net, dests, maxVCs)
}

// Route routes with a named engine: nue, updn, lash, dfsssp, ftree,
// torus2qos, dor, minhop or sssp. Topology-aware engines require the
// metadata carried by generated topologies.
func Route(algo string, tp *Topology, dests []NodeID, maxVCs int) (*RoutingResult, error) {
	eng, err := experiments.EngineByName(algo, tp, 1)
	if err != nil {
		return nil, err
	}
	return eng.Route(tp.Net, dests, maxVCs)
}

// Verify checks connectivity, cycle-freedom and deadlock freedom of a
// routing result (the paper's Lemmas 1-3, mechanically).
func Verify(net *Network, res *RoutingResult) (*VerifyReport, error) {
	return verify.Check(net, res, nil)
}

// RequiredVCs reports how many virtual layers a result actually uses.
func RequiredVCs(res *RoutingResult) int { return verify.RequiredVCs(res) }

// SimulateAllToAll runs the paper's all-to-all shift exchange on the
// routed network with the paper's message size; phases = 0 simulates the
// full all-to-all.
func SimulateAllToAll(net *Network, res *RoutingResult, phases int) (SimResult, error) {
	var terms []NodeID
	for _, t := range net.Terminals() {
		if net.Degree(t) > 0 {
			terms = append(terms, t)
		}
	}
	return sim.Run(net, res, sim.AllToAllShift(terms, phases), sim.PaperConfig())
}

// Simulate runs an arbitrary message list under a custom configuration.
func Simulate(net *Network, res *RoutingResult, msgs []sim.Message, cfg SimConfig) (SimResult, error) {
	return sim.Run(net, res, msgs, cfg)
}

// AllToAllShift builds the paper's traffic pattern over the given
// terminals.
func AllToAllShift(terminals []NodeID, phases int) []sim.Message {
	return sim.AllToAllShift(terminals, phases)
}

// EdgeForwardingIndex computes the γ statistics of §5.1.
func EdgeForwardingIndex(net *Network, res *RoutingResult) GammaStats {
	return metrics.EdgeForwardingIndex(net, res, nil)
}

// Online fabric management (fail-in-place operation under live churn).

type (
	// FabricManager owns a mutable network view and repairs its
	// deadlock-free routing incrementally as links and switches fail or
	// join. Queries are lock-free against epoch-versioned snapshots.
	FabricManager = fabric.Manager
	// FabricOptions configures a FabricManager.
	FabricOptions = fabric.Options
	// FabricEvent is one topology-churn event.
	FabricEvent = fabric.Event
	// FabricSnapshot is one immutable (network, routing) epoch.
	FabricSnapshot = fabric.Snapshot
	// FabricEventReport describes what one applied event changed.
	FabricEventReport = fabric.EventReport
)

// Churn event kinds accepted by FabricManager.Apply.
const (
	LinkFail   = fabric.LinkFail
	LinkJoin   = fabric.LinkJoin
	SwitchFail = fabric.SwitchFail
	SwitchJoin = fabric.SwitchJoin
)

// NewFabricManager routes the topology and starts managing it online.
func NewFabricManager(tp *Topology, opts FabricOptions) (*FabricManager, error) {
	return fabric.NewManager(tp, opts)
}

// Runtime telemetry (see DESIGN.md §10). A Telemetry registry is handed to
// the engine, fabric manager and simulator via their options; all hooks
// are nil-safe, so the zero-cost default is simply not creating one.

type (
	// Telemetry is a metrics registry: atomic counters, gauges,
	// histograms and a bounded structured event ring, exposable as a
	// Prometheus text page or a JSON snapshot.
	Telemetry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time export of a registry.
	TelemetrySnapshot = telemetry.Snapshot
)

// NewTelemetry returns an empty telemetry registry. Wire it up with
// NueOptions.Telemetry = t.Engine(), FabricOptions.Telemetry =
// t.Fabric() (plus EngineTelemetry = t.Engine()) and SimConfig.Telemetry
// = t.Sim(); read it with t.Snapshot() or t.WritePrometheus(w).
func NewTelemetry() *Telemetry { return telemetry.New() }

// Topology generators (Table 1 and the worked examples).

// Torus3D builds a dx x dy x dz 3D torus with t terminals per switch and
// r parallel links per connection.
func Torus3D(dx, dy, dz, t, r int) *Topology { return topology.Torus3D(dx, dy, dz, t, r) }

// Mesh3D builds a 3D mesh (torus without wrap-around).
func Mesh3D(dx, dy, dz, t, r int) *Topology { return topology.Mesh3D(dx, dy, dz, t, r) }

// Mesh2D builds a 2D mesh of tiles, the typical NoC floor plan.
func Mesh2D(dx, dy, t int) *Topology { return topology.Mesh2D(dx, dy, t) }

// KAryNTree builds a k-ary n-tree with the given terminals per leaf.
func KAryNTree(k, n, terminalsPerLeaf int) *Topology {
	return topology.KAryNTree(k, n, terminalsPerLeaf)
}

// Kautz builds the Kautz-derived network of Table 1.
func Kautz(b, k, t, r int) *Topology { return topology.Kautz(b, k, t, r) }

// Dragonfly builds a dragonfly with a switches/group, p terminals/switch,
// h global ports/switch and g groups.
func Dragonfly(a, p, h, g int) *Topology { return topology.Dragonfly(a, p, h, g) }

// Cascade2Group builds the Cray Cascade-like two-group network.
func Cascade2Group() *Topology { return topology.Cascade2Group() }

// TsubameLike builds the Tsubame2.5-like fat tree.
func TsubameLike() *Topology { return topology.TsubameLike() }

// Ring builds a ring of n switches with t terminals each.
func Ring(n, t int) *Topology { return topology.Ring(n, t) }

// RingWithShortcut builds the paper's Fig. 2a example network.
func RingWithShortcut() *Topology { return topology.RingWithShortcut() }

// RandomTopology builds a connected random network (§5.1).
func RandomTopology(rng *rand.Rand, switches, ssLinks, t int) *Topology {
	return topology.RandomTopology(rng, switches, ssLinks, t)
}

// InjectLinkFailures fails approximately the given fraction of
// switch-to-switch links without disconnecting the network.
func InjectLinkFailures(tp *Topology, rng *rand.Rand, fraction float64) (*Topology, int) {
	return topology.InjectLinkFailures(tp, rng, fraction)
}

// FailSwitch disconnects one switch (and its terminals).
func FailSwitch(tp *Topology, s NodeID) *Topology { return topology.FailSwitch(tp, s) }

// WriteTopology/ReadTopology serialize networks in the text format shared
// by the cmd/ tools.
func WriteTopology(w io.Writer, tp *Topology) error { return topology.Write(w, tp) }

// ReadTopology parses the topogen text format.
func ReadTopology(r io.Reader) (*Topology, error) { return topology.Read(r) }
