package repro

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tp := Torus3D(3, 3, 2, 2, 1)
	res, err := RouteNue(tp.Net, tp.Net.Terminals(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(tp.Net, res)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DeadlockFree {
		t.Fatal("not deadlock free")
	}
	if got := RequiredVCs(res); got > 2 {
		t.Errorf("RequiredVCs = %d, want <= 2", got)
	}
	sr, err := SimulateAllToAll(tp.Net, res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Deadlocked || sr.FlitsPerCycle <= 0 {
		t.Errorf("simulation unhealthy: %+v", sr)
	}
	g := EdgeForwardingIndex(tp.Net, res)
	if g.Max <= 0 {
		t.Error("gamma not computed")
	}
}

func TestFacadeRouteByName(t *testing.T) {
	tp := Torus3D(3, 3, 2, 2, 1)
	for _, algo := range []string{"nue", "updn", "dfsssp", "lash", "torus2qos"} {
		res, err := Route(algo, tp, tp.Net.Terminals(), 8)
		if err != nil {
			t.Errorf("Route(%s): %v", algo, err)
			continue
		}
		if _, err := Verify(tp.Net, res); err != nil {
			t.Errorf("Verify(%s): %v", algo, err)
		}
	}
}

func TestFacadeTopologySerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tp := RandomTopology(rng, 12, 24, 2)
	var buf bytes.Buffer
	if err := WriteTopology(&buf, tp); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Net.NumNodes() != tp.Net.NumNodes() {
		t.Error("round trip lost nodes")
	}
}

func TestFacadeFaultInjection(t *testing.T) {
	tp := Torus3D(4, 4, 3, 2, 1)
	faulty := FailSwitch(tp, tp.Torus.SwitchAt[0][0][0])
	rng := rand.New(rand.NewSource(3))
	faulty, n := InjectLinkFailures(faulty, rng, 0.02)
	if n == 0 {
		t.Fatal("no failures injected")
	}
	res, err := RouteNue(faulty.Net, workingTerms(faulty), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(faulty.Net, res); err != nil {
		t.Fatal(err)
	}
}

func workingTerms(tp *Topology) []NodeID {
	var out []NodeID
	for _, tm := range tp.Net.Terminals() {
		if tp.Net.Degree(tm) > 0 {
			out = append(out, tm)
		}
	}
	return out
}

func TestFacadeCustomNetwork(t *testing.T) {
	b := NewBuilder()
	s1 := b.AddSwitch("left")
	s2 := b.AddSwitch("right")
	b.AddLink(s1, s2)
	t1 := b.AddTerminal("a")
	b.AddLink(t1, s1)
	t2 := b.AddTerminal("b")
	b.AddLink(t2, s2)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RouteNue(net, net.Terminals(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := res.Table.Path(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Errorf("path length = %d, want 3", len(p))
	}
}

func TestFacadeGenerators(t *testing.T) {
	cases := []struct {
		tp        *Topology
		switches  int
		terminals int
	}{
		{Ring(6, 2), 6, 12},
		{RingWithShortcut(), 5, 0},
		{Mesh2D(3, 3, 1), 9, 9},
		{Mesh3D(2, 2, 2, 1, 1), 8, 8},
		{Kautz(2, 2, 1, 1), 6, 6},
		{Dragonfly(3, 1, 1, 4), 12, 12},
		{KAryNTree(2, 2, 2), 4, 4},
	}
	for _, c := range cases {
		if c.tp.Net.NumSwitches() != c.switches || c.tp.Net.NumTerminals() != c.terminals {
			t.Errorf("%s: %d/%d switches/terminals, want %d/%d",
				c.tp.Name, c.tp.Net.NumSwitches(), c.tp.Net.NumTerminals(), c.switches, c.terminals)
		}
	}
	if tp := Cascade2Group(); tp.Net.NumSwitches() != 192 {
		t.Errorf("cascade switches = %d", tp.Net.NumSwitches())
	}
	if tp := TsubameLike(); tp.Net.NumSwitches() != 243 {
		t.Errorf("tsubame switches = %d", tp.Net.NumSwitches())
	}
}

func TestFacadeNueOptionsAndTraffic(t *testing.T) {
	tp := Mesh2D(3, 3, 1)
	opts := DefaultNueOptions()
	opts.Seed = 5
	res, err := NewNue(opts).Route(tp.Net, tp.Net.Terminals(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(tp.Net, res); err != nil {
		t.Fatal(err)
	}
	msgs := AllToAllShift(tp.Net.Terminals(), 3)
	if len(msgs) != 9*3 {
		t.Errorf("AllToAllShift = %d messages, want 27", len(msgs))
	}
}
